"""Sharded multi-worker serving: N service processes behind one front-end.

A single :class:`~repro.service.server.SeeDBHTTPServer` is a threading
server in one interpreter — the GIL caps it near one core of aggregate
recommendation work.  :func:`start_frontend` spawns ``n_workers``
independent **processes**, each running a full
:class:`~repro.service.server.RecommendationService` behind its own HTTP
server on an ephemeral loopback port, and a :class:`FrontendServer` that
proxies the public ``/v1`` API to them:

* **dataset sharding** — sessions are routed by consistent hashing of the
  dataset id (:class:`HashRing`, virtual nodes), so one dataset's engines
  and L1 cache entries live on one worker and adding workers does not
  duplicate every dataset's memory in every process;
* **session affinity** — the front-end records which worker answered each
  ``POST /v1/sessions`` and pins the session's later requests to it;
* **shared L2 cache** — every worker gets the same ``l2_cache_dir``
  (:class:`~repro.core.cache.TieredViewResultCache`), so view results paid
  for by worker A's sessions are file-backed hits for worker B;
* **append propagation** — ``POST /v1/datasets/<id>/append`` writes the
  rows exactly once (on the dataset's ring-owner worker; all workers
  share the chunk-store directory) and then broadcasts a bodyless
  ``refresh`` to the other workers, whose tables re-sync via a manifest
  digest compare — appends never invalidate the shared caches;
* **aggregated observability** — ``GET /v1/stats`` fans out and merges
  per-worker counters (including per-tier L1/L2 cache hits);
* **graceful drain** — SIGTERM (or :meth:`FrontendServer.
  graceful_shutdown`) stops accepting, finishes in-flight proxied
  requests (stragglers get 503 with the standard error envelope), then
  SIGTERMs every worker and waits for their own drains.

**Self-healing** (this tier's fault story):

* a :class:`WorkerSupervisor` thread probes worker liveness, respawns a
  dead worker on its original ring slot with exponential backoff and a
  per-slot restart budget, and **re-syncs** the replacement before
  readmitting it to routing (replaying recorded ``POST /v1/datasets``
  registrations and broadcasting ``refresh`` so appends made while the
  slot was down are visible);
* while a slot is down, requests **fail over** to the next live owner on
  the hash ring (bounded retries, per-request deadline); a session whose
  pinned worker died is transparently **resurrected** — re-created from
  its recorded ``POST /v1/sessions`` payload on the failover worker,
  with the original external session id preserved on the wire (recorded
  step history restarts from the resurrection point);
* ``GET /v1/healthz`` answers 503 ``"status": "degraded"`` — with the
  standard error envelope and a ``Retry-After`` header — whenever any
  slot is down, and per-slot supervisor state (restarts, backoff) rides
  along;
* when every candidate worker for a request is down, the front-end
  answers 503 ``retry_later`` with ``Retry-After`` rather than hanging:
  a retrying :class:`~repro.service.client.ServiceClient` rides through
  the whole respawn window without surfacing an error.

Run it from the command line::

    PYTHONPATH=src python -m repro.service.frontend --port 8080 --workers 4

or in-process (tests, benchmarks)::

    from repro.service.frontend import start_frontend
    frontend, thread = start_frontend(n_workers=2, datasets=("census",))
    port = frontend.server_address[1]
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler
from typing import Any, Callable, Mapping, Sequence

from repro.config import CoalesceConfig
from repro.exceptions import ServiceError
from repro.service.api import (
    ErrorCode,
    error_envelope,
    legacy_deprecation_headers,
    split_path,
)
from repro.service.monitor import merge_route_payloads
from repro.service.server import (
    GracefulHTTPServer,
    RecommendationService,
    SeeDBHTTPServer,
    install_sigterm_handler,
)
from repro.testing import faults

#: Virtual nodes per worker on the hash ring — enough that removing one
#: worker of four moves ~25% of keys, not 0% or 100%.
_VNODES = 64

#: Seconds to wait for a spawned worker to report its port.
_WORKER_BOOT_TIMEOUT = 120.0


class HashRing:
    """Consistent hash ring mapping string keys to worker indices."""

    def __init__(self, n_workers: int, vnodes: int = _VNODES) -> None:
        """Place ``n_workers * vnodes`` virtual nodes on the ring."""
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        points: list[tuple[int, int]] = []
        for worker in range(n_workers):
            for vnode in range(vnodes):
                digest = hashlib.sha256(f"{worker}:{vnode}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), worker))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._workers = [w for _, w in points]

    def lookup(self, key: str) -> int:
        """The worker index owning ``key``."""
        digest = hashlib.sha256(key.encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect.bisect(self._hashes, point) % len(self._hashes)
        return self._workers[index]

    def preference(self, key: str) -> list[int]:
        """Every worker index in ring order starting at ``key``'s owner.

        ``preference(key)[0] == lookup(key)``; the rest is the failover
        order — walking the ring clockwise yields, for each key, a stable
        sequence of distinct fallback owners, so one dead worker's keys
        spread across the survivors instead of piling onto one neighbor.
        """
        digest = hashlib.sha256(key.encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        start = bisect.bisect(self._hashes, point)
        total = len(self._hashes)
        seen: set[int] = set()
        order: list[int] = []
        for offset in range(total):
            worker = self._workers[(start + offset) % total]
            if worker not in seen:
                seen.add(worker)
                order.append(worker)
        return order


def _worker_main(
    index: int, conn, service_kwargs: dict[str, Any], drain_timeout: float
) -> None:
    """Entry point of one worker process (spawn target).

    Builds the service, binds an ephemeral loopback port, reports it back
    through ``conn``, installs its own SIGTERM drain (this *is* the
    child's main thread), and serves until told to stop.
    """
    # Name this process for fault-injection identity filters
    # (``SEEDB_FAULTS="kill_worker:on=worker-1,..."``): spawned children
    # inherit the parent's environment, so the spec arrives automatically.
    faults.set_identity(f"worker-{index}")
    service = RecommendationService(**service_kwargs)
    server = SeeDBHTTPServer(("127.0.0.1", 0), service)
    drained = install_sigterm_handler(server, timeout=drain_timeout)
    conn.send(server.server_address[1])
    conn.close()
    try:
        server.serve_forever()
    finally:
        if server.draining:
            drained.wait(drain_timeout + 5.0)
        server.graceful_shutdown(timeout=drain_timeout)


@dataclass
class WorkerHandle:
    """One spawned worker process and its serving port."""

    index: int
    process: multiprocessing.process.BaseProcess
    port: int
    #: Incremented each time the supervisor respawns this ring slot.  A
    #: session pinned to generation N of a slot must be resurrected when
    #: generation N+1 answers there — the replacement process has no
    #: memory of the old session store.
    generation: int = 0

    @property
    def pid(self) -> int:
        """The worker's OS pid (for SIGTERM and the process monitor)."""
        return self.process.pid or -1

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        """The process exit code (None while alive)."""
        return self.process.exitcode


def spawn_worker(
    index: int,
    service_kwargs: Mapping[str, Any] | None = None,
    drain_timeout: float = 10.0,
    generation: int = 0,
) -> WorkerHandle:
    """Spawn one service process on ring slot ``index``; block until booted.

    The supervisor's respawn path: one slot at a time, same arguments the
    original fleet booted with.  Raises ``RuntimeError`` when the worker
    fails to report a port within the boot timeout.
    """
    context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_worker_main,
        args=(index, child_conn, dict(service_kwargs or {}), drain_timeout),
        name=f"seedb-worker-{index}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(_WORKER_BOOT_TIMEOUT):
            raise RuntimeError(f"worker {index} did not report a port")
        port = parent_conn.recv()
    except (RuntimeError, EOFError) as exc:
        if process.is_alive():
            process.terminate()
        raise RuntimeError(f"worker {index} boot failed: {exc}") from exc
    finally:
        parent_conn.close()
    return WorkerHandle(index, process, int(port), generation)


def spawn_workers(
    n_workers: int,
    service_kwargs: Mapping[str, Any] | None = None,
    drain_timeout: float = 10.0,
) -> list[WorkerHandle]:
    """Spawn ``n_workers`` service processes; returns their handles.

    Each worker gets the same ``service_kwargs``
    (:class:`~repro.service.server.RecommendationService` constructor
    arguments — must be picklable).  Raises ``RuntimeError`` if any worker
    fails to report a port within the boot timeout (the stragglers are
    terminated).
    """
    context = multiprocessing.get_context("spawn")
    kwargs = dict(service_kwargs or {})
    pending: list[tuple[int, Any, Any]] = []
    for index in range(n_workers):
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(index, child_conn, kwargs, drain_timeout),
            name=f"seedb-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        pending.append((index, process, parent_conn))
    handles: list[WorkerHandle] = []
    try:
        for index, process, parent_conn in pending:
            if not parent_conn.poll(_WORKER_BOOT_TIMEOUT):
                raise RuntimeError(f"worker {index} did not report a port")
            port = parent_conn.recv()
            parent_conn.close()
            handles.append(WorkerHandle(index, process, int(port)))
    except (RuntimeError, EOFError) as exc:
        for _, process, _ in pending:
            if process.is_alive():
                process.terminate()
        raise RuntimeError(f"worker boot failed: {exc}") from exc
    return handles


@dataclass
class _SessionRecord:
    """Front-end bookkeeping for one external session id.

    Carries everything needed to transparently re-create the session on
    another worker after its home died: where it lives now (slot +
    generation + the worker's internal id) and how it was born (dataset
    and the original ``POST /v1/sessions`` payload).
    """

    worker_index: int
    generation: int
    internal_id: str
    dataset: str
    create_payload: dict[str, Any] = field(default_factory=dict)


class WorkerSupervisor(threading.Thread):
    """Detects dead workers and respawns them on their ring slot.

    Liveness comes from the process table (``Process.is_alive`` — an
    exitcode, not a timeout heuristic), so a worker that was SIGKILLed,
    OOM-killed, or ``os._exit``-ed by an injected fault is noticed within
    one poll interval.  Respawns back off exponentially per slot
    (``backoff_base * 2**restarts``, capped) and stop for good once the
    slot's ``max_restarts`` budget is spent — a crash-looping worker must
    not melt the host.  Before a replacement is readmitted to routing it
    is **re-synced**: recorded dataset registrations are replayed and a
    refresh broadcast brings its memmaps to the chunk stores' current
    manifests, then a liveness probe must answer.

    The supervisor never respawns while the front-end is draining, and
    :meth:`stop` (called from ``FrontendServer._on_close``) ends the loop.
    """

    def __init__(
        self,
        frontend: "FrontendServer",
        poll_interval: float = 0.2,
        max_restarts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 8.0,
        on_respawn: Callable[[WorkerHandle], None] | None = None,
    ) -> None:
        """Supervise ``frontend``'s workers; see the class docstring."""
        super().__init__(name="seedb-supervisor", daemon=True)
        self.frontend = frontend
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.on_respawn = on_respawn
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._slots: dict[int, dict[str, Any]] = {
            worker.index: {
                "state": "up",
                "restarts": 0,
                "due": 0.0,
                "last_exitcode": None,
            }
            for worker in frontend.workers
        }

    def stop(self) -> None:
        """End the supervision loop (idempotent; joins are the caller's)."""
        self._stop_event.set()

    def status(self) -> dict[int, dict[str, Any]]:
        """Per-slot supervision state (for healthz and tests)."""
        with self._lock:
            return {index: dict(slot) for index, slot in self._slots.items()}

    # -------------------------------------------------------------- #
    # the loop
    # -------------------------------------------------------------- #

    def run(self) -> None:
        """Poll liveness until stopped; respawn dead slots when due."""
        while not self._stop_event.wait(self.poll_interval):
            if self.frontend.draining:
                continue
            try:
                self._sweep(time.monotonic())
            except Exception:  # noqa: BLE001 - supervision must not die
                # A failed sweep (e.g. transient spawn error) is retried
                # on the next tick; crashing the supervisor would turn
                # every later worker death into a permanent outage.
                continue

    def _sweep(self, now: float) -> None:
        for worker in list(self.frontend.workers):
            with self._lock:
                slot = self._slots[worker.index]
                state = slot["state"]
            if state == "up" and not worker.alive:
                self._mark_dead(worker, now)
            elif state == "down":
                with self._lock:
                    due = slot["due"]
                if now >= due:
                    self._respawn(worker)

    def _mark_dead(self, worker: WorkerHandle, now: float) -> None:
        """Record a detected death; schedule the respawn or give up."""
        self.frontend.mark_worker_down(worker.index)
        with self._lock:
            slot = self._slots[worker.index]
            slot["last_exitcode"] = worker.exitcode
            if slot["restarts"] >= self.max_restarts:
                slot["state"] = "failed"
            else:
                delay = min(
                    self.backoff_base * (2 ** slot["restarts"]),
                    self.backoff_cap,
                )
                slot["state"] = "down"
                slot["due"] = now + delay

    def _respawn(self, dead: WorkerHandle) -> None:
        """Spawn a replacement for ``dead``'s slot, re-sync, readmit."""
        with self._lock:
            slot = self._slots[dead.index]
            slot["restarts"] += 1
            slot["state"] = "respawning"
        try:
            handle = spawn_worker(
                dead.index,
                self.frontend.service_kwargs,
                self.frontend.worker_drain_timeout,
                generation=dead.generation + 1,
            )
            self._resync(handle)
        except Exception:  # noqa: BLE001 - a failed respawn retries/backs off
            with self._lock:
                slot = self._slots[dead.index]
                if slot["restarts"] > self.max_restarts:
                    slot["state"] = "failed"
                else:
                    delay = min(
                        self.backoff_base * (2 ** slot["restarts"]),
                        self.backoff_cap,
                    )
                    slot["state"] = "down"
                    slot["due"] = time.monotonic() + delay
            return
        self.frontend.adopt_worker(handle)
        with self._lock:
            self._slots[dead.index]["state"] = "up"
        if self.on_respawn is not None:
            try:
                self.on_respawn(handle)
            except Exception:  # noqa: BLE001 - observer errors are not ours
                pass

    def _resync(self, handle: WorkerHandle) -> None:
        """Bring a fresh worker up to date before it takes traffic.

        Replays every recorded ``POST /v1/datasets`` registration (the
        replacement's registry starts from only the boot-time
        ``service_kwargs``), then refreshes each so appends that landed
        while the slot was down are memmapped in, and finally demands a
        healthz answer.  Any failure aborts the readmission — a worker
        that cannot re-sync must not serve traffic.
        """
        for payload in self.frontend.registered_datasets():
            body = _worker_http(
                handle.port, "POST", "/v1/datasets", payload,
                timeout=self.frontend.proxy_timeout,
            )
            name = body.get("name")
            if isinstance(name, str) and name:
                _worker_http(
                    handle.port, "POST", f"/v1/datasets/{name}/refresh", None,
                    timeout=self.frontend.proxy_timeout,
                )
        health = _worker_http(
            handle.port, "GET", "/v1/healthz", None,
            timeout=self.frontend.proxy_timeout,
        )
        if health.get("status") != "ok":
            raise RuntimeError(
                f"respawned worker {handle.index} failed its liveness probe"
            )


def _worker_http(
    port: int,
    method: str,
    path: str,
    payload: Mapping[str, Any] | None,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """One out-of-band JSON request to a worker; raises on any failure."""
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise RuntimeError(
                f"worker on port {port} answered {response.status} for "
                f"{method} {path}"
            )
        return parsed
    finally:
        conn.close()


class _FrontendHandler(BaseHTTPRequestHandler):
    """Routes public API requests to worker processes."""

    server: "FrontendServer"
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True
    #: True for legacy unprefixed paths (adds the ``Deprecation`` header).
    _deprecated = False

    #: Per-thread cache of connections to workers (keyed by port) so each
    #: proxy thread reuses TCP connections instead of reconnecting.
    _local = threading.local()

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request logging unless the server is verbose."""
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(
        self,
        status: int,
        payload: Mapping[str, object],
        retry_after: float | None = None,
    ) -> None:
        """Write one JSON response with correct framing."""
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        if self._deprecated:
            for name, value in legacy_deprecation_headers():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.count_request(ok=status < 400)

    def _forward(
        self, worker: WorkerHandle, method: str, parts: list[str]
    ) -> tuple[int, dict[str, Any]]:
        """Proxy one request to ``worker``; returns ``(status, body)``.

        A connection the worker closed between requests is retried once on
        a fresh one; a dead worker surfaces as :class:`ServiceError` with
        code ``no_worker``.
        """
        path = "/v1/" + "/".join(parts)
        conns = getattr(self._local, "conns", None)
        if conns is None:
            conns = self._local.conns = {}
        for attempt in (0, 1):
            conn = conns.get(worker.port)
            if conn is None:
                conn = conns[worker.port] = HTTPConnection(
                    "127.0.0.1", worker.port, timeout=self.server.proxy_timeout
                )
            try:
                conn.request(
                    "POST" if method == "POST" else "GET",
                    path,
                    body=self._body or None,
                    headers={"Content-Type": "application/json"}
                    if self._body
                    else {},
                )
                response = conn.getresponse()
                raw = response.read()
                return response.status, (json.loads(raw) if raw else {})
            except (HTTPException, ConnectionError, OSError, ValueError):
                try:
                    conn.close()
                finally:
                    conns.pop(worker.port, None)
                if attempt == 0 and worker.alive:
                    continue
                raise ServiceError(
                    f"worker {worker.index} is unavailable",
                    status=503,
                    code=ErrorCode.NO_WORKER,
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def _dispatch(self, method: str) -> None:
        """Route one request; errors become envelopes with proper status."""
        parts, versioned = split_path(self.path)
        self._deprecated = not versioned and bool(parts)
        self._body = b""
        if not self.server.request_started():
            self.close_connection = True
            self._send(
                503,
                error_envelope(ErrorCode.SHUTTING_DOWN, "server is shutting down"),
            )
            return
        try:
            self._handle_routes(method, parts)
        finally:
            self.server.request_finished()

    def _handle_routes(self, method: str, parts: list[str]) -> None:
        """The front-end route table."""
        try:
            try:
                length = int(self.headers.get("Content-Length") or 0)
                if length < 0:
                    raise ValueError("negative")
            except ValueError:
                self.close_connection = True
                raise ServiceError(
                    "invalid Content-Length header",
                    code=ErrorCode.INVALID_LENGTH,
                ) from None
            if length:
                self._body = self.rfile.read(length)
            server = self.server
            if method == "GET" and parts == ["healthz"]:
                payload = server.healthz()
                if payload.get("status") == "ok":
                    self._send(200, payload)
                else:
                    # Degraded is reported with the standard envelope so
                    # clients branch on the stable code, while the full
                    # health payload rides along for operators.
                    body = error_envelope(
                        ErrorCode.DEGRADED,
                        "one or more worker slots are down",
                    )
                    body.update(payload)
                    self._send(503, body, retry_after=server.retry_after_hint)
            elif method == "GET" and parts == ["stats"]:
                self._send(200, server.aggregate_stats())
            elif method == "POST" and parts == ["datasets"]:
                status, body = server.broadcast_datasets(self)
                self._send(status, body)
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "datasets"
                and parts[2] == "append"
            ):
                status, body = server.append_dataset(self, parts)
                self._send(status, body)
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "datasets"
                and parts[2] == "refresh"
            ):
                status, body = server.broadcast_refresh(self, parts[1])
                self._send(status, body)
            elif method == "GET" and parts == ["datasets"]:
                status, body = self._forward(
                    server.first_live_worker(), method, parts
                )
                self._send(status, body)
            elif method == "POST" and parts == ["sessions"]:
                self._create_session(parts)
            elif (
                method in ("GET", "POST")
                and len(parts) >= 2
                and parts[0] == "sessions"
            ):
                self._forward_session(method, parts)
            else:
                self._send(
                    404,
                    error_envelope(
                        ErrorCode.UNKNOWN_ROUTE,
                        f"no route for {method} {self.path}",
                    ),
                )
        except ServiceError as exc:
            self._send(
                exc.status,
                error_envelope(exc.code, str(exc)),
                retry_after=exc.retry_after,
            )
        except Exception as exc:  # noqa: BLE001 - a serving loop must not die
            self._send(
                500,
                error_envelope(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"),
            )

    def _create_session(self, parts: list[str]) -> None:
        """Create a session on the dataset's ring-assigned worker.

        Fails over along the ring's preference order when the owner is
        down — a new session has no worker state yet, so any live worker
        serves it equally well.
        """
        server = self.server
        try:
            payload = json.loads(self._body) if self._body else {}
        except ValueError:
            payload = {}  # let the worker produce the canonical bad_json error
        dataset = "census"
        if isinstance(payload, dict):
            dataset = str(payload.get("dataset", "census"))
        deadline = time.monotonic() + server.request_deadline
        for worker in server.live_workers_for(dataset):
            try:
                status, body = self._forward(worker, "POST", parts)
            except ServiceError as exc:
                if exc.code != ErrorCode.NO_WORKER:
                    raise
                server.note_worker_failure(worker)
                if time.monotonic() >= deadline:
                    break
                continue
            if status == 201 and isinstance(body, dict) and "session_id" in body:
                server.record_session(
                    str(body["session_id"]),
                    worker,
                    dataset=dataset,
                    create_payload=payload if isinstance(payload, dict) else {},
                )
            self._send(status, body)
            return
        raise ServiceError(
            f"no live worker for dataset {dataset!r}; retry shortly",
            status=503,
            code=ErrorCode.RETRY_LATER,
            retry_after=server.retry_after_hint,
        )

    def _forward_session(self, method: str, parts: list[str]) -> None:
        """Forward a session-pinned request, resurrecting if needed.

        The external session id is rewritten to the worker's internal id
        on the way in and back to the external id on the way out, so a
        resurrection (new internal id on a failover worker) is invisible
        to the client.
        """
        server = self.server
        external = parts[1]
        deadline = time.monotonic() + server.request_deadline
        last_error: ServiceError | None = None
        # Workers that already failed THIS request.  ``note_worker_failure``
        # only derates a slot once the process table agrees it is dead, and
        # ``Process.is_alive`` can lag the actual death by longer than a
        # few connection-refused round-trips take — so without this memory
        # every failover attempt can re-resolve to the same dying worker
        # and exhaust the loop before the slot is marked down.
        failed: set[int] = set()
        for _ in range(server.failover_attempts + 1):
            worker, internal = server.resolve_session(external, avoid=failed)
            try:
                status, body = self._forward(
                    worker, method, [parts[0], internal, *parts[2:]]
                )
            except ServiceError as exc:
                if exc.code != ErrorCode.NO_WORKER:
                    raise
                failed.add(worker.index)
                server.note_worker_failure(worker)
                last_error = exc
                if time.monotonic() >= deadline:
                    break
                continue
            if (
                isinstance(body, dict)
                and internal != external
                and body.get("session_id") == internal
            ):
                body["session_id"] = external
            self._send(status, body)
            return
        raise ServiceError(
            f"session {external!r} temporarily unroutable; retry shortly",
            status=503,
            code=ErrorCode.RETRY_LATER,
            retry_after=server.retry_after_hint,
        ) from last_error

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        """Handle GET requests."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        """Handle POST requests."""
        self._dispatch("POST")


class FrontendServer(GracefulHTTPServer):
    """The public-facing router over a set of worker processes.

    Owns the hash ring, the session→worker affinity map, and the worker
    handles; on :meth:`graceful_shutdown` it drains its own in-flight
    proxied requests first (inherited), then SIGTERMs every worker and
    joins them — each worker runs its own graceful drain.

    Fault-tolerance state lives here too: the down-slot set the
    supervisor and handlers maintain, the recorded dataset registrations
    replayed into respawned workers, and the session records that make
    resurrection possible (see the module docstring).
    """

    def __init__(
        self,
        address: tuple[str, int],
        workers: Sequence[WorkerHandle],
        verbose: bool = False,
        proxy_timeout: float = 120.0,
        worker_drain_timeout: float = 10.0,
        service_kwargs: Mapping[str, Any] | None = None,
        request_deadline: float = 30.0,
        failover_attempts: int = 2,
        retry_after_hint: float = 1.0,
    ) -> None:
        """Bind to ``address`` and route over ``workers``.

        ``service_kwargs`` are kept for the supervisor's respawns;
        ``request_deadline`` bounds one proxied request's total failover
        time; ``failover_attempts`` bounds how many *additional* workers
        a session request may try; ``retry_after_hint`` is the
        ``Retry-After`` value (seconds) sent with 503 ``retry_later`` /
        ``degraded`` answers — tune it to the supervisor's backoff base.
        """
        if not workers:
            raise ValueError("FrontendServer needs at least one worker")
        super().__init__(address, _FrontendHandler, verbose)
        self.workers = list(workers)
        self.proxy_timeout = proxy_timeout
        self.worker_drain_timeout = worker_drain_timeout
        self.service_kwargs = dict(service_kwargs or {})
        self.request_deadline = request_deadline
        self.failover_attempts = failover_attempts
        self.retry_after_hint = retry_after_hint
        self.supervisor: WorkerSupervisor | None = None
        self._ring = HashRing(len(self.workers))
        self._sessions: dict[str, _SessionRecord] = {}
        self._sessions_lock = threading.Lock()
        self._down: set[int] = set()
        self._down_lock = threading.Lock()
        self._registered: list[dict[str, Any]] = []
        self._registered_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._resurrections = 0
        self._counter_lock = threading.Lock()
        self._started_unix = time.time()

    # -------------------------------------------------------------- #
    # routing state
    # -------------------------------------------------------------- #

    def slot_up(self, index: int) -> bool:
        """Whether ring slot ``index`` should receive traffic."""
        with self._down_lock:
            if index in self._down:
                return False
        return self.workers[index].alive

    def mark_worker_down(self, index: int) -> None:
        """Exclude a slot from routing until a replacement is adopted."""
        with self._down_lock:
            self._down.add(index)

    def adopt_worker(self, handle: WorkerHandle) -> None:
        """Swap a (re-synced) replacement into its slot and readmit it."""
        self.workers[handle.index] = handle
        with self._down_lock:
            self._down.discard(handle.index)

    def note_worker_failure(self, worker: WorkerHandle) -> None:
        """A proxy attempt found ``worker`` unusable; derate if it died.

        Only an actually-dead process is marked down here — a slow or
        momentarily-unreachable worker is the supervisor's call, not one
        failed proxy's.
        """
        if not worker.alive:
            self.mark_worker_down(worker.index)

    def live_workers_for(self, dataset: str) -> list[WorkerHandle]:
        """Ring-preference-ordered live workers for ``dataset`` (bounded)."""
        order = [
            self.workers[index]
            for index in self._ring.preference(dataset)
            if self.slot_up(index)
        ]
        return order[: self.failover_attempts + 1]

    def first_live_worker(self) -> WorkerHandle:
        """Any live worker (for worker-agnostic reads like the registry)."""
        for worker in self.workers:
            if self.slot_up(worker.index):
                return worker
        raise ServiceError(
            "no live workers; retry shortly",
            status=503,
            code=ErrorCode.RETRY_LATER,
            retry_after=self.retry_after_hint,
        )

    def worker_for_dataset(self, dataset: str) -> WorkerHandle:
        """The preferred live worker for ``dataset`` (ring owner if up)."""
        for index in self._ring.preference(dataset):
            if self.slot_up(index):
                return self.workers[index]
        raise ServiceError(
            f"no live worker for dataset {dataset!r}; retry shortly",
            status=503,
            code=ErrorCode.RETRY_LATER,
            retry_after=self.retry_after_hint,
        )

    def worker_for_session(self, session_id: str) -> WorkerHandle:
        """The worker a session is currently pinned to (404 if unknown)."""
        with self._sessions_lock:
            record = self._sessions.get(session_id)
        if record is None:
            raise ServiceError(
                f"unknown session {session_id!r}",
                status=404,
                code=ErrorCode.UNKNOWN_SESSION,
            )
        return self.workers[record.worker_index]

    def resolve_session(
        self, session_id: str, avoid: "set[int] | frozenset[int]" = frozenset()
    ) -> tuple[WorkerHandle, str]:
        """Where to send a session request: ``(worker, internal id)``.

        The healthy path is a dict lookup.  When the pinned slot is down
        — or its process was respawned (generation mismatch), which means
        the in-memory session store is gone — the session is resurrected:
        re-created from its recorded create payload on the first live
        worker in the dataset's ring preference, under a fresh internal
        id, with the external id unchanged.  Recorded step history
        restarts from the resurrection point (worker-local state died
        with the worker).

        ``avoid`` lists slots the caller already watched fail on this very
        request; they are skipped even if the process table still calls
        them alive (a just-killed worker can answer ``is_alive`` for a
        beat after its socket went away).
        """
        with self._sessions_lock:
            record = self._sessions.get(session_id)
        if record is None:
            raise ServiceError(
                f"unknown session {session_id!r}",
                status=404,
                code=ErrorCode.UNKNOWN_SESSION,
            )
        pinned = self.workers[record.worker_index]
        if (
            record.worker_index not in avoid
            and self.slot_up(record.worker_index)
            and pinned.generation == record.generation
        ):
            return pinned, record.internal_id
        for index in self._ring.preference(record.dataset):
            if index in avoid or not self.slot_up(index):
                continue
            worker = self.workers[index]
            try:
                body = _worker_http(
                    worker.port,
                    "POST",
                    "/v1/sessions",
                    record.create_payload or {"dataset": record.dataset},
                    timeout=self.proxy_timeout,
                )
                internal = str(body["session_id"])
            except (RuntimeError, HTTPException, ConnectionError, OSError,
                    ValueError, KeyError):
                self.note_worker_failure(worker)
                continue
            with self._sessions_lock:
                record.worker_index = index
                record.generation = worker.generation
                record.internal_id = internal
            with self._counter_lock:
                self._resurrections += 1
            return worker, internal
        raise ServiceError(
            f"session {session_id!r} temporarily unroutable; retry shortly",
            status=503,
            code=ErrorCode.RETRY_LATER,
            retry_after=self.retry_after_hint,
        )

    def record_session(
        self,
        session_id: str,
        worker: WorkerHandle | int,
        dataset: str = "census",
        create_payload: Mapping[str, Any] | None = None,
    ) -> None:
        """Pin ``session_id`` to the worker that created it.

        Also records how the session was created so it can be resurrected
        elsewhere if that worker dies.
        """
        if isinstance(worker, int):
            worker = self.workers[worker]
        with self._sessions_lock:
            self._sessions[session_id] = _SessionRecord(
                worker_index=worker.index,
                generation=worker.generation,
                internal_id=session_id,
                dataset=dataset,
                create_payload=dict(create_payload or {}),
            )

    def registered_datasets(self) -> list[dict[str, Any]]:
        """Recorded ``POST /v1/datasets`` payloads (for respawn re-sync)."""
        with self._registered_lock:
            return [dict(payload) for payload in self._registered]

    def count_request(self, ok: bool) -> None:
        """Tally one routed request (``ok=False`` for 4xx/5xx answers)."""
        with self._counter_lock:
            self._requests += 1
            if not ok:
                self._errors += 1

    # -------------------------------------------------------------- #
    # aggregate endpoints
    # -------------------------------------------------------------- #

    def healthz(self) -> dict[str, Any]:
        """Front-end liveness plus per-worker liveness flags.

        ``status`` is ``"ok"`` only when every ring slot is up; any dead
        or derated slot makes the whole answer ``"degraded"`` (the HTTP
        layer maps that to 503) — an orchestrator probing this endpoint
        must see partial outages, not a reassuring lie.
        """
        supervision = self.supervisor.status() if self.supervisor else {}
        rows: list[dict[str, Any]] = []
        degraded = False
        for worker in self.workers:
            up = self.slot_up(worker.index)
            degraded = degraded or not up
            row: dict[str, Any] = {
                "index": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "generation": worker.generation,
                "state": "up" if up else "down",
            }
            slot = supervision.get(worker.index)
            if slot is not None:
                row["restarts"] = slot["restarts"]
                row["supervisor_state"] = slot["state"]
                if slot["last_exitcode"] is not None:
                    row["last_exitcode"] = slot["last_exitcode"]
            rows.append(row)
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": time.time() - self._started_unix,
            "supervised": self.supervisor is not None,
            "workers": rows,
        }

    def _worker_get(self, worker: WorkerHandle, path: str) -> dict[str, Any]:
        """One out-of-band GET to a worker (stats fan-out)."""
        conn = HTTPConnection("127.0.0.1", worker.port, timeout=self.proxy_timeout)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            raw = response.read()
            return json.loads(raw) if raw else {}
        finally:
            conn.close()

    def aggregate_stats(self) -> dict[str, Any]:
        """``GET /v1/stats``: front-end counters + merged worker stats."""
        with self._counter_lock:
            requests, errors = self._requests, self._errors
            resurrections = self._resurrections
        with self._sessions_lock:
            sessions = len(self._sessions)
        per_worker: list[dict[str, Any]] = []
        unreachable = 0
        tier_totals = {"l1_hits": 0, "l1_misses": 0, "l2_hits": 0, "l2_misses": 0}
        tiered = False
        delta_totals: dict[str, int] = {}
        executed_totals: dict[str, int] = {}
        route_payloads: list[dict[str, Any]] = []
        coalesce_blocks: list[dict[str, Any]] = []
        for worker in self.workers:
            try:
                stats = self._worker_get(worker, "/v1/stats")
            except (HTTPException, ConnectionError, OSError, ValueError):
                stats = {"unreachable": True}
                unreachable += 1
            stats["worker"] = worker.index
            stats["pid"] = worker.pid
            per_worker.append(stats)
            tiers = stats.get("cache_tiers")
            if isinstance(tiers, dict):
                tiered = True
                for key in tier_totals:
                    tier_totals[key] += int(tiers.get(key, 0))
            delta = stats.get("delta_cache")
            if isinstance(delta, dict):
                for key, value in delta.items():
                    delta_totals[key] = delta_totals.get(key, 0) + int(value)
            executed = stats.get("executed")
            if isinstance(executed, dict):
                for key, value in executed.items():
                    executed_totals[key] = executed_totals.get(key, 0) + int(value)
            routes = stats.get("routes")
            if isinstance(routes, dict):
                route_payloads.append(routes)
            coalesce = stats.get("coalesce")
            if isinstance(coalesce, dict):
                coalesce_blocks.append(coalesce)
        payload: dict[str, Any] = {
            "uptime_seconds": time.time() - self._started_unix,
            "requests": requests,
            "errors": errors,
            "sessions": sessions,
            "sessions_resurrected": resurrections,
            "n_workers": len(self.workers),
            "workers_unreachable": unreachable,
            "workers": per_worker,
        }
        if tiered:
            payload["cache_tiers"] = tier_totals
        if delta_totals:
            payload["delta_cache"] = delta_totals
        if executed_totals:
            payload["executed"] = executed_totals
        if route_payloads:
            # Exact bucket-level merge: percentiles reflect the union of
            # every worker's samples, not an average of averages.
            payload["routes"] = merge_route_payloads(route_payloads)
        if coalesce_blocks:
            payload["coalesce"] = _merge_coalesce_blocks(coalesce_blocks)
        return payload

    def broadcast_datasets(
        self, handler: _FrontendHandler
    ) -> tuple[int, dict[str, Any]]:
        """``POST /v1/datasets``: register on every live worker.

        Every worker must know the dataset — any of them may own it on
        the ring.  Down slots are skipped (the supervisor replays
        recorded registrations into their replacements); a worker that
        dies mid-broadcast is likewise deferred rather than failing the
        whole registration.  A *rejection* (4xx from a live worker)
        still short-circuits verbatim.  The accepted payload is recorded
        for respawn re-sync.
        """
        first: tuple[int, dict[str, Any]] | None = None
        deferred: list[int] = []
        try:
            payload = json.loads(handler._body) if handler._body else {}
        except ValueError:
            payload = {}
        for worker in self.workers:
            if not self.slot_up(worker.index):
                deferred.append(worker.index)
                continue
            try:
                status, body = handler._forward(worker, "POST", ["datasets"])
            except ServiceError as exc:
                if exc.code != ErrorCode.NO_WORKER:
                    raise
                self.note_worker_failure(worker)
                deferred.append(worker.index)
                continue
            if status >= 400:
                return status, body
            if first is None:
                first = (status, body)
        if first is None:
            raise ServiceError(
                "no live worker accepted the registration; retry shortly",
                status=503,
                code=ErrorCode.RETRY_LATER,
                retry_after=self.retry_after_hint,
            )
        if isinstance(payload, dict) and payload.get("path"):
            with self._registered_lock:
                self._registered.append(dict(payload))
        status, body = first
        if deferred:
            body["deferred_workers"] = sorted(deferred)
        return status, body

    def _worker_post(self, worker: WorkerHandle, path: str) -> dict[str, Any]:
        """One out-of-band bodyless POST to a worker (refresh broadcast)."""
        conn = HTTPConnection("127.0.0.1", worker.port, timeout=self.proxy_timeout)
        try:
            conn.request("POST", path)
            response = conn.getresponse()
            raw = response.read()
            return json.loads(raw) if raw else {}
        finally:
            conn.close()

    def append_dataset(
        self, handler: _FrontendHandler, parts: list[str]
    ) -> tuple[int, dict[str, Any]]:
        """``POST /v1/datasets/<id>/append``: write once, refresh everywhere.

        The rows are appended exactly once, by the dataset's (live)
        ring-owner worker (all workers share the chunk-store directory,
        so broadcasting the append verb itself would duplicate the rows);
        the other workers then get a bodyless ``refresh`` broadcast — a
        manifest digest compare plus memmap re-sync — so every worker
        serves the extended table without the rows crossing the wire
        again.  Workers that fail to refresh are reported in
        ``stale_workers``; they re-sync on the next append or refresh
        (and a supervisor-respawned worker re-opens the current manifest
        anyway).
        """
        dataset = parts[1]
        owner = self.worker_for_dataset(dataset)
        status, body = handler._forward(owner, "POST", parts)
        if status >= 400:
            return status, body
        refreshed: list[int] = [owner.index]
        stale: list[int] = []
        for worker in self.workers:
            if worker.index == owner.index:
                continue
            if not self.slot_up(worker.index):
                stale.append(worker.index)
                continue
            try:
                self._worker_post(worker, f"/v1/datasets/{dataset}/refresh")
                refreshed.append(worker.index)
            except (HTTPException, ConnectionError, OSError, ValueError):
                stale.append(worker.index)
        body["refreshed_workers"] = sorted(refreshed)
        if stale:
            body["stale_workers"] = sorted(stale)
        return status, body

    def broadcast_refresh(
        self, handler: _FrontendHandler, dataset: str
    ) -> tuple[int, dict[str, Any]]:
        """``POST /v1/datasets/<id>/refresh``: re-sync every live worker."""
        first: tuple[int, dict[str, Any]] | None = None
        refreshed: list[int] = []
        stale: list[int] = []
        for worker in self.workers:
            if not self.slot_up(worker.index):
                stale.append(worker.index)
                continue
            try:
                status, body = handler._forward(
                    worker, "POST", ["datasets", dataset, "refresh"]
                )
            except ServiceError as exc:
                if exc.code != ErrorCode.NO_WORKER:
                    raise
                self.note_worker_failure(worker)
                stale.append(worker.index)
                continue
            if status >= 400:
                return status, body
            refreshed.append(worker.index)
            if first is None:
                first = (status, body)
        if first is None:
            raise ServiceError(
                "no live worker to refresh; retry shortly",
                status=503,
                code=ErrorCode.RETRY_LATER,
                retry_after=self.retry_after_hint,
            )
        status, body = first
        body["refreshed_workers"] = refreshed
        if stale:
            body["stale_workers"] = sorted(stale)
        return status, body

    # -------------------------------------------------------------- #
    # shutdown
    # -------------------------------------------------------------- #

    def _on_close(self) -> None:
        """Stop supervision, SIGTERM every worker, join (kill stragglers)."""
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor.join(timeout=5.0)
        for worker in self.workers:
            if worker.alive:
                try:
                    os.kill(worker.pid, signal.SIGTERM)
                except OSError:  # pragma: no cover - already gone
                    pass
        deadline = time.monotonic() + self.worker_drain_timeout + 5.0
        for worker in self.workers:
            worker.process.join(max(0.1, deadline - time.monotonic()))
            if worker.alive:  # pragma: no cover - drain timeout
                worker.process.terminate()
                worker.process.join(5.0)


def _merge_coalesce_blocks(blocks: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge per-worker ``coalesce`` stats blocks into one fleet view.

    Counters add; window occupancy re-derives from the batch-weighted
    sums (a mean of per-worker means would overweight idle workers); the
    per-key breakdown merges key-wise since each dataset key may be
    served by several workers.
    """
    merged: dict[str, Any] = {
        "enabled": True,
        "requests": 0,
        "batches": 0,
        "unions": 0,
        "requests_coalesced": 0,
        "singleflight_hits": 0,
        "window_occupancy_max": 0,
    }
    occupancy_weighted = 0.0
    keys: dict[str, dict[str, int]] = {}
    for block in blocks:
        for counter in (
            "requests",
            "batches",
            "unions",
            "requests_coalesced",
            "singleflight_hits",
        ):
            merged[counter] += int(block.get(counter, 0))
        merged["window_occupancy_max"] = max(
            merged["window_occupancy_max"],
            int(block.get("window_occupancy_max", 0)),
        )
        occupancy_weighted += float(
            block.get("window_occupancy_mean", 0.0)
        ) * int(block.get("batches", 0))
        for key, counters in (block.get("keys") or {}).items():
            if not isinstance(counters, Mapping):
                continue
            per_key = keys.setdefault(
                key, {"batches": 0, "requests": 0, "max_batch": 0}
            )
            per_key["batches"] += int(counters.get("batches", 0))
            per_key["requests"] += int(counters.get("requests", 0))
            per_key["max_batch"] = max(
                per_key["max_batch"], int(counters.get("max_batch", 0))
            )
    merged["window_occupancy_mean"] = (
        occupancy_weighted / merged["batches"] if merged["batches"] else 0.0
    )
    merged["keys"] = keys
    return merged


def start_frontend(
    n_workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    service_kwargs: Mapping[str, Any] | None = None,
    l2_cache_dir: str | None = None,
    verbose: bool = False,
    drain_timeout: float = 10.0,
    supervise: bool = True,
    max_restarts: int = 3,
    restart_backoff: float = 0.5,
    supervisor_poll: float = 0.2,
    on_worker_respawn: Callable[[WorkerHandle], None] | None = None,
    **extra_service_kwargs: Any,
) -> tuple[FrontendServer, threading.Thread]:
    """Spawn workers and serve the front-end on a daemon thread.

    ``service_kwargs`` / ``extra_service_kwargs`` are passed to every
    worker's :class:`~repro.service.server.RecommendationService`.  Unless
    overridden, a shared ``l2_cache_dir`` is created under the system temp
    dir so the workers form one two-tier cache.  ``supervise=True`` (the
    default) starts a :class:`WorkerSupervisor` that respawns dead workers
    with exponential backoff starting at ``restart_backoff`` seconds,
    giving up after ``max_restarts`` respawns per slot;
    ``on_worker_respawn`` is called with each adopted replacement handle
    (e.g. to register its pid with a process monitor).  Returns
    ``(frontend, thread)``; stop with ``frontend.graceful_shutdown()``
    (which also stops the supervisor and the workers).
    """
    kwargs = dict(service_kwargs or {})
    kwargs.update(extra_service_kwargs)
    if l2_cache_dir is None and kwargs.get("result_cache", True):
        l2_cache_dir = tempfile.mkdtemp(prefix="seedb-l2-")
    if l2_cache_dir is not None:
        kwargs.setdefault("l2_cache_dir", l2_cache_dir)
    workers = spawn_workers(n_workers, kwargs, drain_timeout)
    frontend = FrontendServer(
        (host, port),
        workers,
        verbose=verbose,
        worker_drain_timeout=drain_timeout,
        service_kwargs=kwargs,
        retry_after_hint=max(restart_backoff, 0.1),
    )
    if supervise:
        supervisor = WorkerSupervisor(
            frontend,
            poll_interval=supervisor_poll,
            max_restarts=max_restarts,
            backoff_base=restart_backoff,
            on_respawn=on_worker_respawn,
        )
        frontend.supervisor = supervisor
        supervisor.start()
    thread = threading.Thread(
        target=frontend.serve_forever, name="seedb-frontend", daemon=True
    )
    thread.start()
    return frontend, thread


def main(argv: Sequence[str] | None = None) -> None:
    """Command-line entry point: serve the sharded front-end."""
    parser = argparse.ArgumentParser(
        description="SeeDB sharded recommendation front-end"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated allowlist (default: every registry dataset)",
    )
    parser.add_argument(
        "--scale", default=None, help="dataset build scale (smoke|small|full)"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-session view-result cache",
    )
    parser.add_argument(
        "--data-dir",
        action="append",
        default=[],
        metavar="DIR",
        help="on-disk chunked dataset directory to serve (repeatable)",
    )
    parser.add_argument(
        "--l2-cache-dir",
        default=None,
        help="shared L2 cache directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable worker supervision (dead workers stay dead)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="respawns allowed per worker slot before it is given up on",
    )
    parser.add_argument(
        "--coalesce",
        action="store_true",
        help="coalesce concurrent recommend requests in every worker",
    )
    parser.add_argument(
        "--coalesce-batch",
        type=int,
        default=16,
        help="max requests per coalescing window (with --coalesce)",
    )
    parser.add_argument(
        "--coalesce-wait-ms",
        type=float,
        default=5.0,
        help="max milliseconds a window stays open (with --coalesce)",
    )
    parser.add_argument(
        "--no-singleflight",
        action="store_true",
        help="disable identical-request single-flight dedup (with --coalesce)",
    )
    args = parser.parse_args(argv)
    coalesce: bool | CoalesceConfig = False
    if args.coalesce:
        coalesce = CoalesceConfig(
            enabled=True,
            max_batch_size=args.coalesce_batch,
            max_wait_ms=args.coalesce_wait_ms,
            singleflight=not args.no_singleflight,
        )
    datasets = (
        tuple(name.strip() for name in args.datasets.split(",") if name.strip())
        if args.datasets
        else None
    )
    frontend, _ = start_frontend(
        n_workers=args.workers,
        host=args.host,
        port=args.port,
        l2_cache_dir=args.l2_cache_dir,
        verbose=True,
        drain_timeout=args.drain_timeout,
        supervise=not args.no_supervise,
        max_restarts=args.max_restarts,
        datasets=datasets,
        scale=args.scale,
        result_cache=not args.no_cache,
        data_dirs=tuple(args.data_dir),
        coalesce=coalesce,
    )
    drained = install_sigterm_handler(frontend, timeout=args.drain_timeout)
    host, port = frontend.server_address[:2]
    print(
        f"SeeDB front-end on http://{host}:{port} "
        f"({len(frontend.workers)} workers)"
    )
    try:
        while not frontend.draining:
            time.sleep(0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        if frontend.draining:
            drained.wait(args.drain_timeout + 5.0)
        frontend.graceful_shutdown(timeout=args.drain_timeout)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
