"""Analyst sessions: the serving layer's unit of interactive exploration.

The VLDB paper frames SeeDB as middleware an analyst converses with: issue
a query, look at the recommended visualizations, drill into the most
surprising one, repeat.  This module holds both halves of that loop:

* :class:`Session` / :class:`SessionStore` — the server-side record of one
  analyst's step sequence (thread-safe; sessions are created by
  ``POST /sessions`` and appended to by every recommend call).
* :class:`AnalystDrillDown` — a *simulated* analyst that replays the loop
  against the JSON API.  It reuses the §6.2 user-study behavioural model
  (:func:`repro.study.sessions.bookmark_probability` and the observed
  examined-chart counts), so the service benchmark and the user study
  share one mechanism: examine the ranked views top-down, bookmark with
  probability ``sigmoid((utility - threshold) / temperature)``, then add
  the bookmarked view's most deviating group as a new predicate clause.

Consecutive steps of one session — and the same step across *different*
sessions replaying the same exploration — share almost all of their view
queries, which is exactly the workload the cross-session
:class:`~repro.core.cache.ViewResultCache` exists for.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ServiceError
from repro.study.sessions import (
    SEEDB_VIEWS_MEAN,
    SEEDB_VIEWS_SD,
    bookmark_probability,
)

#: A conjunction of equality clauses, the JSON API's predicate shape.
TargetClauses = tuple[tuple[str, object], ...]


def clauses_from_payload(raw: object) -> TargetClauses:
    """Validate and normalize a request's ``target`` field into clauses.

    Accepts a single ``{"column": ..., "value": ...}`` object or a list of
    them; raises :class:`~repro.exceptions.ServiceError` (HTTP 400) on any
    other shape.  Values must be JSON scalars (str/int/float/bool).
    """
    if isinstance(raw, Mapping):
        raw = [raw]
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise ServiceError("'target' must be an object or a list of objects")
    clauses: list[tuple[str, object]] = []
    for item in raw:
        if not isinstance(item, Mapping) or "column" not in item or "value" not in item:
            raise ServiceError(
                "each target clause needs 'column' and 'value' fields"
            )
        column, value = item["column"], item["value"]
        if not isinstance(column, str):
            raise ServiceError(f"target column must be a string, got {column!r}")
        if not isinstance(value, (str, int, float, bool)):
            raise ServiceError(
                f"target value for {column!r} must be a JSON scalar, got {value!r}"
            )
        clauses.append((column, value))
    if not clauses:
        raise ServiceError("'target' must contain at least one clause")
    return tuple(clauses)


@dataclass(frozen=True)
class SessionStep:
    """One recommend request/response pair recorded in a session."""

    index: int
    target: TargetClauses
    k: int
    strategy: str
    #: ``(dimension, measure, func)`` view keys, ranked best first.
    selected: tuple[tuple[str, str, str], ...]
    cache_hits: int
    cache_misses: int
    wall_seconds: float

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (``GET /sessions/<id>``)."""
        return {
            "index": self.index,
            "target": [{"column": c, "value": v} for c, v in self.target],
            "k": self.k,
            "strategy": self.strategy,
            "selected": [list(key) for key in self.selected],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class Session:
    """One analyst's exploration session over one dataset."""

    session_id: str
    dataset: str
    store: str
    metric: str
    created_unix: float
    steps: list[SessionStep] = field(default_factory=list)
    #: Dataset row count at this analyst's last visit (creation or last
    #: recommend step) — the baseline for "changed since last visit"
    #: diffs when the dataset is appended to between steps.
    last_seen_rows: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, step: SessionStep) -> SessionStep:
        """Append one completed step, assigning its index atomically.

        Concurrent recommend calls on one session are raced by design
        (ThreadingHTTPServer), so the step's ``index`` field is stamped
        here, under the session lock — the value the caller passed in is
        a placeholder.  Returns the stamped step.
        """
        with self._lock:
            step = replace(step, index=len(self.steps))
            self.steps.append(step)
        return step

    def data_diff(self, n_rows: int) -> dict[str, object]:
        """Advance the last-visit marker; return the change summary.

        Called with the dataset's current row count on every recommend
        step.  The returned dict tells the analyst whether the data grew
        since they last looked — the serving-layer surface of the
        append/delta-refresh path (the views they see were carry-merged
        over exactly ``new_rows`` fresh rows, not recomputed).
        """
        with self._lock:
            previous = self.last_seen_rows
            self.last_seen_rows = n_rows
        return {
            "n_rows": n_rows,
            "new_rows": max(0, n_rows - previous),
            "changed": n_rows != previous,
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (``GET /sessions/<id>``)."""
        with self._lock:
            steps = list(self.steps)
            last_seen = self.last_seen_rows
        return {
            "session_id": self.session_id,
            "dataset": self.dataset,
            "store": self.store,
            "metric": self.metric,
            "created_unix": self.created_unix,
            "last_seen_rows": last_seen,
            "steps": [step.as_dict() for step in steps],
        }


class SessionStore:
    """Thread-safe registry of live sessions."""

    def __init__(self) -> None:
        """Create an empty store."""
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    def create(
        self, dataset: str, store: str, metric: str, n_rows: int = 0
    ) -> Session:
        """Open a new session over ``dataset`` and return it.

        ``n_rows`` seeds the session's last-visit row marker so the first
        recommend step reports ``changed`` only if the dataset actually
        grew after the session opened.
        """
        session = Session(
            session_id=uuid.uuid4().hex[:16],
            dataset=dataset,
            store=store,
            metric=metric,
            created_unix=time.time(),
            last_seen_rows=n_rows,
        )
        with self._lock:
            self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        """Look up a session; unknown ids raise :class:`ServiceError` (404)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(
                f"unknown session {session_id!r}",
                status=404,
                code="unknown_session",
            )
        return session

    def __len__(self) -> int:
        """Number of live sessions."""
        with self._lock:
            return len(self._sessions)


class AnalystDrillDown:
    """A simulated analyst replaying a drill-down loop against the API.

    Behaviour per step (the §6.2 model, seeded and deterministic given the
    responses): draw an examined-chart budget around the study's observed
    SEEDB mean, walk the ranked views top-down, bookmark each with
    :func:`~repro.study.sessions.bookmark_probability`, and drill into the
    first bookmarked view whose dimension the current target does not
    constrain yet — adding ``dimension = <view's most deviating group>``
    as a new clause.  If nothing gets bookmarked the analyst still drills
    into the best unconstrained view, so scripts always make progress.

    Example::

        analyst = AnalystDrillDown([("marital_status", "Unmarried")], k=5)
        request = analyst.first_request()
        while request is not None:
            response = post_recommend(session_id, request)   # HTTP call
            request = analyst.next_request(response)
    """

    def __init__(
        self,
        base_target: Sequence[tuple[str, object]],
        k: int = 5,
        n_steps: int = 3,
        strategy: str = "sharing",
        seed: int = 0,
        threshold: float = 0.05,
        temperature: float = 0.02,
    ) -> None:
        """Set up the script: starting clauses, depth, and behaviour seed."""
        if n_steps < 1:
            raise ServiceError(f"n_steps must be >= 1, got {n_steps}")
        self.target: list[tuple[str, object]] = list(base_target)
        self.k = k
        self.n_steps = n_steps
        self.strategy = strategy
        self.threshold = threshold
        self.temperature = temperature
        self._rng = np.random.default_rng(seed)
        self._steps_issued = 0

    def _request(self) -> dict[str, object]:
        """The JSON body for the current target."""
        self._steps_issued += 1
        return {
            "target": [{"column": c, "value": v} for c, v in self.target],
            "k": self.k,
            "strategy": self.strategy,
        }

    def first_request(self) -> dict[str, object]:
        """The opening request (the analyst's initial query Q)."""
        if self._steps_issued:
            raise ServiceError("first_request() may only be called once")
        return self._request()

    def next_request(self, response: Mapping[str, object]) -> dict[str, object] | None:
        """Drill into ``response`` and return the next request, or None.

        ``response`` is the JSON body of the previous recommend call; None
        means the script is finished (``n_steps`` reached or no view left
        to drill into).
        """
        if self._steps_issued >= self.n_steps:
            return None
        views = response.get("views")
        if not isinstance(views, list) or not views:
            return None
        constrained = {column for column, _ in self.target}
        n_examined = max(
            1, int(round(self._rng.normal(SEEDB_VIEWS_MEAN, SEEDB_VIEWS_SD)))
        )
        chosen: Mapping[str, object] | None = None
        fallback: Mapping[str, object] | None = None
        for view in views[:n_examined]:
            if view["dimension"] in constrained:
                continue
            if fallback is None:
                fallback = view
            probability = bookmark_probability(
                float(view["utility"]), self.threshold, self.temperature
            )
            if self._rng.random() < probability:
                chosen = view
                break
        chosen = chosen or fallback
        if chosen is None or chosen.get("top_group") is None:
            return None
        self.target.append((str(chosen["dimension"]), chosen["top_group"]))
        return self._request()
