"""Two-factor ANOVA with interaction, for the §6.2 significance tests.

The paper analyzes a balanced 2 (tool) x 2 (dataset) within-subjects design
and reports e.g. "significant effect of tool on the number of bookmarks,
F(1,1) = 18.609, p < 0.001".  This is a standard fixed-effects two-way
ANOVA over a balanced table of observations; p-values come from scipy's F
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ReproError


@dataclass(frozen=True)
class FTest:
    """One ANOVA line: F statistic, degrees of freedom, p-value."""

    f_statistic: float
    df_effect: int
    df_error: int
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


@dataclass(frozen=True)
class TwoFactorAnova:
    """Results for factor A, factor B, and their interaction."""

    factor_a: FTest
    factor_b: FTest
    interaction: FTest


def two_factor_anova(table: np.ndarray) -> TwoFactorAnova:
    """Balanced two-way ANOVA.

    ``table`` has shape ``(levels_a, levels_b, replicates)`` — e.g.
    ``(2 tools, 2 datasets, 16 participants)`` of bookmark counts.
    """
    arr = np.asarray(table, dtype=np.float64)
    if arr.ndim != 3:
        raise ReproError(f"expected (a, b, n) observations, got shape {arr.shape}")
    a_levels, b_levels, n = arr.shape
    if a_levels < 2 or b_levels < 2 or n < 2:
        raise ReproError(f"need >=2 levels per factor and >=2 replicates, got {arr.shape}")

    grand = arr.mean()
    mean_a = arr.mean(axis=(1, 2))
    mean_b = arr.mean(axis=(0, 2))
    mean_ab = arr.mean(axis=2)

    ss_a = b_levels * n * float(((mean_a - grand) ** 2).sum())
    ss_b = a_levels * n * float(((mean_b - grand) ** 2).sum())
    ss_ab = n * float(
        (
            (mean_ab - mean_a[:, None] - mean_b[None, :] + grand) ** 2
        ).sum()
    )
    ss_within = float(((arr - mean_ab[:, :, None]) ** 2).sum())

    df_a = a_levels - 1
    df_b = b_levels - 1
    df_ab = df_a * df_b
    df_within = a_levels * b_levels * (n - 1)
    ms_within = ss_within / df_within if df_within else float("nan")

    def f_test(ss: float, df: int) -> FTest:
        ms = ss / df
        if ms_within <= 0:
            return FTest(float("inf"), df, df_within, 0.0)
        f = ms / ms_within
        p = float(stats.f.sf(f, df, df_within))
        return FTest(float(f), df, df_within, p)

    return TwoFactorAnova(
        factor_a=f_test(ss_a, df_a),
        factor_b=f_test(ss_b, df_b),
        interaction=f_test(ss_ab, df_ab),
    )
