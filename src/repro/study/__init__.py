"""User-study substrate (paper §6).

The paper validates its deviation metric with 5 human experts labeling
census visualizations (§6.1, Figure 15) and compares SeeDB against a manual
charting tool with 16 participants (§6.2, Table 2).  Humans are not
redistributable either, so this package simulates them: expert labelers
whose probability of calling a visualization "interesting" rises with its
true deviation (plus personal bias and noise), and analysis sessions where
a simulated participant bookmarks views they perceive as interesting —
drawn from SeeDB recommendations or from manual exploration order.

The quantitative artifacts — ROC/AUROC against expert consensus, bookmark
counts/rates, and the two-factor ANOVA — are computed exactly as in the
paper.
"""

from repro.study.anova import TwoFactorAnova, two_factor_anova
from repro.study.experts import ExpertPanel, SimulatedExpert, consensus_labels
from repro.study.roc import RocCurve, roc_curve
from repro.study.sessions import (
    SessionOutcome,
    StudyResult,
    bookmark_probability,
    run_user_study,
)

__all__ = [
    "ExpertPanel",
    "RocCurve",
    "SessionOutcome",
    "SimulatedExpert",
    "StudyResult",
    "TwoFactorAnova",
    "bookmark_probability",
    "consensus_labels",
    "roc_curve",
    "run_user_study",
    "two_factor_anova",
]
