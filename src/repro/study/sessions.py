"""Simulated SEEDB-vs-MANUAL analysis sessions (paper §6.2, Table 2).

The study design is reproduced structurally: 16 participants, a 2 (tool) x
2 (dataset) within-subjects design with counterbalanced assignment, a fixed
time budget per session, and bookmark decisions.

Behavioural model (one participant, one session):

* A session allows a participant-specific number of chart examinations
  (drawn around the paper's observed per-tool means — SEEDB surfaces charts
  faster than manual construction, so more are examined).
* MANUAL presents views in a participant-random exploration order; SEEDB
  presents views best-utility-first (its recommendation ranking).
* The participant bookmarks a view with probability
  ``sigmoid((utility - threshold) / temperature)`` — the same perception
  model the expert panel uses, so the two halves of §6 share one mechanism.

Because SeeDB front-loads high-utility views, bookmark *rate* rises ~3x,
which is the paper's headline Table 2 result; the ANOVA on tool/dataset
effects is then computed exactly as they do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.view import ViewKey
from repro.exceptions import ReproError
from repro.study.anova import TwoFactorAnova, two_factor_anova

#: Mean examined-chart counts per tool, from the paper's Table 2
#: (total_viz: MANUAL 6.3 ± 3.8, SEEDB 10.8 ± 4.41).
MANUAL_VIEWS_MEAN, MANUAL_VIEWS_SD = 6.3, 3.8
SEEDB_VIEWS_MEAN, SEEDB_VIEWS_SD = 10.8, 4.41


@dataclass(frozen=True)
class SessionOutcome:
    """One (participant, tool, dataset) session."""

    participant: int
    tool: str  # "seedb" | "manual"
    dataset: str
    total_viz: int
    num_bookmarks: int

    @property
    def bookmark_rate(self) -> float:
        return self.num_bookmarks / self.total_viz if self.total_viz else 0.0


@dataclass
class StudyResult:
    """All sessions plus the Table-2 aggregates and ANOVA."""

    sessions: list[SessionOutcome] = field(default_factory=list)

    def by_tool(self, tool: str) -> list[SessionOutcome]:
        return [s for s in self.sessions if s.tool == tool]

    def table2_row(self, tool: str) -> dict[str, object]:
        sessions = self.by_tool(tool)
        if not sessions:
            raise ReproError(f"no sessions for tool {tool!r}")
        viz = np.asarray([s.total_viz for s in sessions], dtype=float)
        marks = np.asarray([s.num_bookmarks for s in sessions], dtype=float)
        rates = np.asarray([s.bookmark_rate for s in sessions])
        return {
            "tool": tool.upper(),
            "total_viz": f"{viz.mean():.1f} ± {viz.std(ddof=1):.2f}",
            "num_bookmarks": f"{marks.mean():.1f} ± {marks.std(ddof=1):.2f}",
            "bookmark_rate": f"{rates.mean():.2f} ± {rates.std(ddof=1):.2f}",
            "mean_rate": float(rates.mean()),
            "mean_bookmarks": float(marks.mean()),
        }

    def _anova_table(self, metric: str) -> np.ndarray:
        tools = ("manual", "seedb")
        datasets = sorted({s.dataset for s in self.sessions})
        cells = []
        for tool in tools:
            row = []
            for dataset in datasets:
                values = [
                    (s.num_bookmarks if metric == "bookmarks" else s.bookmark_rate)
                    for s in self.sessions
                    if s.tool == tool and s.dataset == dataset
                ]
                row.append(values)
            cells.append(row)
        n = min(len(v) for row in cells for v in row)
        return np.asarray([[v[:n] for v in row] for row in cells])

    def anova_bookmarks(self) -> TwoFactorAnova:
        """Tool x dataset ANOVA on bookmark counts (paper: tool F=18.6, p<0.001)."""
        return two_factor_anova(self._anova_table("bookmarks"))

    def anova_rate(self) -> TwoFactorAnova:
        """Tool x dataset ANOVA on bookmark rate (paper: tool F=10.0, p<0.01)."""
        return two_factor_anova(self._anova_table("rate"))


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + np.exp(-x))


def bookmark_probability(
    utility: float, threshold: float = 0.05, temperature: float = 0.02
) -> float:
    """Probability a participant bookmarks a view of the given utility.

    ``sigmoid((utility - threshold) / temperature)`` — the perception model
    shared by the expert panel (§6.1), the simulated user study (§6.2), and
    the serving layer's drill-down analyst
    (:class:`repro.service.sessions.AnalystDrillDown`).
    """
    return float(_sigmoid((utility - threshold) / temperature))


def _simulate_session(
    participant: int,
    tool: str,
    dataset: str,
    ranked_views: Sequence[ViewKey],
    utilities: Mapping[ViewKey, float],
    threshold: float,
    temperature: float,
    rng: np.random.Generator,
) -> SessionOutcome:
    if tool == "seedb":
        n_viz = max(2, int(round(rng.normal(SEEDB_VIEWS_MEAN, SEEDB_VIEWS_SD))))
        order = list(ranked_views)
    else:
        n_viz = max(2, int(round(rng.normal(MANUAL_VIEWS_MEAN, MANUAL_VIEWS_SD))))
        order = list(ranked_views)
        rng.shuffle(order)
    examined = order[: min(n_viz, len(order))]
    bookmarks = 0
    for key in examined:
        p = bookmark_probability(utilities[key], threshold, temperature)
        if rng.random() < p:
            bookmarks += 1
    return SessionOutcome(
        participant=participant,
        tool=tool,
        dataset=dataset,
        total_viz=len(examined),
        num_bookmarks=bookmarks,
    )


def run_user_study(
    rankings: Mapping[str, Sequence[ViewKey]],
    utilities: Mapping[str, Mapping[ViewKey, float]],
    n_participants: int = 16,
    threshold: float = 0.05,
    temperature: float = 0.02,
    seed: int = 0,
) -> StudyResult:
    """Run the full 2x2 within-subjects study.

    ``rankings[dataset]`` is SeeDB's utility ranking of all views for that
    dataset; ``utilities[dataset]`` maps each view to its true utility.
    Counterbalancing: participant i uses SEEDB on dataset ``i % 2`` and
    MANUAL on the other, matching the paper's order/dataset controls.
    """
    datasets = sorted(rankings)
    if len(datasets) != 2:
        raise ReproError(f"the study design needs exactly 2 datasets, got {datasets}")
    result = StudyResult()
    for participant in range(n_participants):
        rng = np.random.default_rng(seed * 7919 + participant)
        personal_threshold = float(threshold + rng.normal(0.0, threshold / 4))
        seedb_dataset = datasets[participant % 2]
        manual_dataset = datasets[1 - participant % 2]
        for tool, dataset in (("seedb", seedb_dataset), ("manual", manual_dataset)):
            result.sessions.append(
                _simulate_session(
                    participant,
                    tool,
                    dataset,
                    rankings[dataset],
                    utilities[dataset],
                    personal_threshold,
                    temperature,
                    rng,
                )
            )
    return result
