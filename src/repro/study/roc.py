"""ROC curves and AUROC for recommendation quality (paper Figure 15b).

SeeDB ranks all views by utility; sweeping the recommendation cutoff k from
0 to the full view count traces TPR (recall of interesting views) against
FPR (fraction of uninteresting views recommended).  The paper reports
AUROC = 0.903 on the census task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.view import ViewKey
from repro.exceptions import ReproError


@dataclass(frozen=True)
class RocCurve:
    """One ROC curve: aligned FPR/TPR arrays, one point per cutoff k."""

    fpr: np.ndarray
    tpr: np.ndarray
    ks: np.ndarray

    @property
    def auroc(self) -> float:
        """Area under the curve by trapezoidal rule."""
        return float(np.trapezoid(self.tpr, self.fpr))

    def point_at_k(self, k: int) -> tuple[float, float]:
        idx = int(np.searchsorted(self.ks, k))
        idx = min(idx, len(self.ks) - 1)
        return float(self.fpr[idx]), float(self.tpr[idx])


def roc_curve(
    ranking: Sequence[ViewKey], interesting: Mapping[ViewKey, bool]
) -> RocCurve:
    """ROC of a utility ranking against ground-truth interest labels.

    ``ranking`` must contain every labeled view exactly once, best first.
    """
    if set(ranking) != set(interesting):
        raise ReproError("ranking and labels must cover the same views")
    n_pos = sum(1 for flag in interesting.values() if flag)
    n_neg = len(interesting) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ReproError("need at least one interesting and one boring view")
    tprs = [0.0]
    fprs = [0.0]
    tp = fp = 0
    for key in ranking:
        if interesting[key]:
            tp += 1
        else:
            fp += 1
        tprs.append(tp / n_pos)
        fprs.append(fp / n_neg)
    return RocCurve(
        fpr=np.asarray(fprs), tpr=np.asarray(tprs), ks=np.arange(len(ranking) + 1)
    )
