"""Simulated expert labelers and ground-truth consensus (paper §6.1).

Each expert sees a visualization's *true* deviation utility but judges it
through a personal lens: a sigmoid over ``(utility - threshold)`` with an
individual threshold, temperature, and seeded noise.  This captures the
paper's observations that deviation mostly — but not perfectly — predicts
perceived interestingness (their Figures 14c/14d: one high-deviation view
was deemed boring, one low-deviation view interesting).

Ground truth is the paper's rule: a view is interesting when a majority of
the panel says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.view import ViewKey


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class SimulatedExpert:
    """One expert: labels a view interesting with utility-driven probability."""

    threshold: float = 0.05
    temperature: float = 0.02
    #: Standard deviation of per-view perception noise in utility units.
    perception_noise: float = 0.01
    seed: int = 0

    def label(self, utilities: Mapping[ViewKey, float]) -> dict[ViewKey, bool]:
        """Label every view; deterministic given the seed."""
        rng = np.random.default_rng(self.seed)
        labels: dict[ViewKey, bool] = {}
        for key in sorted(utilities):
            perceived = utilities[key] + rng.normal(0.0, self.perception_noise)
            p = float(_sigmoid((perceived - self.threshold) / self.temperature))
            labels[key] = bool(rng.random() < p)
        return labels


@dataclass(frozen=True)
class ExpertPanel:
    """A panel of experts with spread thresholds (default: 5, as in §6.1)."""

    experts: tuple[SimulatedExpert, ...]

    @classmethod
    def default(
        cls,
        n_experts: int = 5,
        base_threshold: float = 0.05,
        threshold_spread: float = 0.02,
        seed: int = 0,
    ) -> "ExpertPanel":
        rng = np.random.default_rng(seed)
        experts = tuple(
            SimulatedExpert(
                threshold=float(base_threshold + rng.normal(0.0, threshold_spread)),
                temperature=0.02,
                perception_noise=0.01,
                seed=seed * 1000 + i,
            )
            for i in range(n_experts)
        )
        return cls(experts)

    def label_all(
        self, utilities: Mapping[ViewKey, float]
    ) -> dict[ViewKey, list[bool]]:
        """Each view's per-expert labels (aligned with ``self.experts``)."""
        per_expert = [expert.label(utilities) for expert in self.experts]
        return {
            key: [labels[key] for labels in per_expert] for key in sorted(utilities)
        }

    def interest_counts(self, utilities: Mapping[ViewKey, float]) -> dict[ViewKey, int]:
        """How many experts found each view interesting (Figure 15a data)."""
        return {
            key: sum(votes) for key, votes in self.label_all(utilities).items()
        }


def consensus_labels(
    votes: Mapping[ViewKey, Sequence[bool]], majority: int | None = None
) -> dict[ViewKey, bool]:
    """Majority-vote ground truth (the paper's consensus rule)."""
    labels: dict[ViewKey, bool] = {}
    for key, view_votes in votes.items():
        needed = majority if majority is not None else (len(view_votes) // 2 + 1)
        labels[key] = sum(view_votes) >= needed
    return labels
