"""SeeDB core: the paper's contribution.

* :mod:`repro.core.view` — aggregate views (a, m, f) and view-space
  enumeration.
* :mod:`repro.core.difference` — deviation-based utility (paper §2).
* :mod:`repro.core.sharing` — sharing optimizations (§4.1): combine
  aggregates, combine group-bys (bin-packed under a memory budget), combine
  target+reference, parallel batches.
* :mod:`repro.core.pruning` — pruning optimizations (§4.2): CI
  (Hoeffding–Serfling) and MAB (successive accepts/rejects), plus NO_PRU and
  RANDOM baselines.
* :mod:`repro.core.engine` — the phased execution framework combining both
  (§3), with NO_OPT / SHARING / COMB / COMB_EARLY strategies.
* :mod:`repro.core.parallel` — real thread-pool query execution (§4.1
  "Parallel Query Execution") with deterministic batch barriers.
* :mod:`repro.core.cache` — the cross-session view-result cache the
  serving layer (:mod:`repro.service`) shares across sessions.
* :mod:`repro.core.recommender` — the :class:`SeeDB` facade.
"""

from repro.core.cache import CacheStats, ViewResultCache
from repro.core.view import AggregateView, ViewSpace
from repro.core.engine import EngineRun, ExecutionEngine, Parallelism, Strategy
from repro.core.parallel import ParallelDispatcher
from repro.core.recommender import SeeDB
from repro.core.result import Recommendation, RecommendationSet, accuracy, utility_distance

__all__ = [
    "AggregateView",
    "CacheStats",
    "ViewResultCache",
    "EngineRun",
    "ExecutionEngine",
    "ParallelDispatcher",
    "Parallelism",
    "Recommendation",
    "RecommendationSet",
    "SeeDB",
    "Strategy",
    "ViewSpace",
    "accuracy",
    "utility_distance",
]
