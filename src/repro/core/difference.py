"""Deviation-based utility (paper §2).

``U(V) = S(P[V(D_Q)], P[V(D_R)])``: align the target and reference
per-group summaries on their union of groups, normalize each into a
probability distribution, and measure the distance ``S`` between them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.base import DistanceFunction
from repro.metrics.normalize import align_distributions


@dataclass(frozen=True)
class ViewDistributions:
    """Aligned, normalized target/reference distributions for one view."""

    keys: tuple[object, ...]
    target: np.ndarray
    reference: np.ndarray

    def as_rows(self) -> list[dict[str, object]]:
        return [
            {"group": key, "target": float(p), "reference": float(q)}
            for key, p, q in zip(self.keys, self.target, self.reference)
        ]


def compute_utility(
    metric: DistanceFunction,
    target_summary: dict[object, float],
    reference_summary: dict[object, float],
) -> tuple[float, ViewDistributions]:
    """Utility of a view given its two finalized per-group summaries.

    A view with an empty target or reference summary (the selection matched
    no rows yet — possible in early phases) gets utility 0: there is no
    evidence of deviation.
    """
    if not target_summary or not reference_summary:
        keys = tuple(sorted(set(target_summary) | set(reference_summary), key=repr))
        n = max(len(keys), 1)
        flat = np.full(n, 1.0 / n)
        return 0.0, ViewDistributions(keys or ("?",), flat, flat.copy())
    keys, p, q = align_distributions(target_summary, reference_summary)
    return metric(p, q), ViewDistributions(tuple(keys), p, q)
