"""Aggregate views and the view space.

A view is the paper's triple ``(a, m, f)``: group by dimension ``a``,
aggregate measure ``m`` with function ``f``.  The view space enumerated for
a table is the cross product A x M x F, optionally restricted to
analyst-chosen attributes (the front end lets users steer, §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.db.catalog import TableMeta
from repro.db.query import AggregateFunction
from repro.exceptions import RecommendationError

#: Hashable identity of a view, used as dict key throughout the engine.
ViewKey = tuple[str, str, str]


@dataclass(frozen=True)
class AggregateView:
    """One candidate visualization: ``f(m)`` grouped by ``a``."""

    dimension: str
    measure: str
    func: AggregateFunction = AggregateFunction.AVG

    @property
    def key(self) -> ViewKey:
        return (self.dimension, self.measure, self.func.value)

    @property
    def agg_alias(self) -> str:
        """Output-column alias this view's aggregate uses in shared queries."""
        return f"{self.func.value.lower()}__{self.measure}"

    def describe(self) -> str:
        """Human-readable description, e.g. ``AVG(capital_gain) BY sex``."""
        return f"{self.func.value}({self.measure}) BY {self.dimension}"

    def __str__(self) -> str:
        return self.describe()


class ViewSpace:
    """The enumerated candidate views for one table."""

    def __init__(self, views: Sequence[AggregateView]) -> None:
        if not views:
            raise RecommendationError("view space is empty")
        keys = [v.key for v in views]
        if len(set(keys)) != len(keys):
            raise RecommendationError("duplicate views in view space")
        self._views = tuple(views)
        self._by_key = {v.key: v for v in self._views}

    @classmethod
    def enumerate(
        cls,
        meta: TableMeta,
        funcs: Iterable[AggregateFunction] = (AggregateFunction.AVG,),
        dimensions: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
    ) -> "ViewSpace":
        """Cross product of dimensions x measures x functions.

        ``dimensions``/``measures`` restrict the space (they must be subsets
        of the catalog's); the default uses everything the catalog declares.
        """
        dims = tuple(dimensions) if dimensions is not None else meta.dimensions
        meas = tuple(measures) if measures is not None else meta.measures
        unknown_dims = set(dims) - set(meta.dimensions)
        unknown_meas = set(meas) - set(meta.measures)
        if unknown_dims:
            raise RecommendationError(f"not dimension attributes: {sorted(unknown_dims)}")
        if unknown_meas:
            raise RecommendationError(f"not measure attributes: {sorted(unknown_meas)}")
        funcs = tuple(funcs)
        if not funcs:
            raise RecommendationError("at least one aggregate function required")
        views = [
            AggregateView(a, m, f) for a in dims for m in meas for f in funcs
        ]
        return cls(views)

    def __iter__(self) -> Iterator[AggregateView]:
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, key: object) -> bool:
        return key in self._by_key

    def get(self, key: ViewKey) -> AggregateView:
        try:
            return self._by_key[key]
        except KeyError:
            raise RecommendationError(f"no such view: {key!r}") from None

    @property
    def views(self) -> tuple[AggregateView, ...]:
        return self._views

    def dimensions(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for view in self._views:
            seen.setdefault(view.dimension, None)
        return tuple(seen)
