"""Recommendation results and the result-quality metrics of paper §5.4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.difference import ViewDistributions
from repro.core.view import AggregateView, ViewKey
from repro.exceptions import RecommendationError


@dataclass(frozen=True)
class Recommendation:
    """One recommended visualization."""

    view: AggregateView
    utility: float
    distributions: ViewDistributions
    rank: int

    def chart_spec(self) -> dict:
        """Bar-chart spec for this recommendation (see :mod:`repro.viz`)."""
        from repro.viz.spec import recommendation_spec

        return recommendation_spec(self)


@dataclass(frozen=True)
class RecommendationSet:
    """The ranked top-k recommendations of one SeeDB invocation."""

    recommendations: tuple[Recommendation, ...]
    k: int
    strategy: str
    pruner: str
    metric: str
    modeled_latency: float
    wall_seconds: float
    queries_issued: int
    phases_executed: int

    def __iter__(self) -> Iterator[Recommendation]:
        return iter(self.recommendations)

    def __len__(self) -> int:
        return len(self.recommendations)

    def __getitem__(self, index: int) -> Recommendation:
        return self.recommendations[index]

    @property
    def keys(self) -> list[ViewKey]:
        return [rec.view.key for rec in self.recommendations]

    def describe(self) -> str:
        lines = [
            f"top-{self.k} views ({self.strategy}/{self.pruner}, metric={self.metric}, "
            f"latency={self.modeled_latency:.3f}s modeled / {self.wall_seconds:.3f}s wall, "
            f"{self.queries_issued} queries)"
        ]
        for rec in self.recommendations:
            lines.append(f"  #{rec.rank:<2} U={rec.utility:.4f}  {rec.view.describe()}")
        return "\n".join(lines)


def accuracy(selected: Sequence[ViewKey], truth: Sequence[ViewKey]) -> float:
    """Fraction of the true top-k present in the returned set (paper §5.4).

    ``accuracy = |{v_T} ∩ {v_S}| / |{v_T}|``.
    """
    if not truth:
        raise RecommendationError("true top-k is empty")
    truth_set = set(truth)
    return len(truth_set & set(selected)) / len(truth_set)


def utility_distance(
    selected: Sequence[ViewKey],
    truth: Sequence[ViewKey],
    true_utilities: Mapping[ViewKey, float],
) -> float:
    """Mean true utility of the true top-k minus that of the returned set.

    Uses *true* utilities for both sides, so near-ties at the top-k boundary
    cost almost nothing even when accuracy drops — the paper's argument for
    reporting both metrics together.
    """
    if not truth or not selected:
        raise RecommendationError("utility_distance needs non-empty view sets")
    true_avg = sum(true_utilities[key] for key in truth) / len(truth)
    selected_avg = sum(true_utilities.get(key, 0.0) for key in selected) / len(selected)
    return true_avg - selected_avg
