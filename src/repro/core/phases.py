"""Phase partitioning for the phased execution framework (paper §3).

"Each phase operates on a subset of the dataset.  Phase i of n operates on
the ith of n equally-sized partitions" — contiguous row ranges here, with
any remainder rows folded into the final phase.  For the pruning statistics
to behave like random sampling, benchmarks shuffle the table first
(``Table.shuffled``), matching the paper's randomization between runs.
"""

from __future__ import annotations

from repro.exceptions import QueryError


def phase_ranges(n_rows: int, n_phases: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_phases`` near-equal contiguous ranges."""
    if n_rows < 0:
        raise QueryError(f"n_rows must be nonnegative, got {n_rows}")
    if n_phases <= 0:
        raise QueryError(f"n_phases must be positive, got {n_phases}")
    if n_rows == 0:
        return [(0, 0)]
    n_phases = min(n_phases, n_rows)
    base = n_rows // n_phases
    ranges = []
    start = 0
    for i in range(n_phases):
        stop = start + base + (1 if i < n_rows % n_phases else 0)
        ranges.append((start, stop))
        start = stop
    return ranges
