"""Phase partitioning for the phased execution framework (paper §3).

"Each phase operates on a subset of the dataset.  Phase i of n operates on
the ith of n equally-sized partitions" — contiguous row ranges here, with
any remainder rows folded into the final phase.  For the pruning statistics
to behave like random sampling, benchmarks shuffle the table first
(``Table.shuffled``), matching the paper's randomization between runs.

Chunked tables (:mod:`repro.db.chunks`) add an optional ``align`` mode:
phase boundaries are snapped to multiples of the chunk size so no phase
ever splits a chunk — each streamed chunk is then read by exactly one
phase, which is what ``EngineConfig.chunk_aligned_phases`` requests.
"""

from __future__ import annotations

from repro.exceptions import QueryError


def phase_ranges(
    n_rows: int, n_phases: int, align: int | None = None
) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_phases`` near-equal contiguous ranges.

    With ``align`` set, every interior boundary is snapped to the nearest
    multiple of ``align`` (the chunk size), clamped monotonically so ranges
    never overlap; the final range always ends at ``n_rows``.  Snapping can
    produce empty ranges when ``align`` exceeds the unaligned phase width —
    callers tolerate zero-row phases (they execute zero-row queries).
    """
    if n_rows < 0:
        raise QueryError(f"n_rows must be nonnegative, got {n_rows}")
    if n_phases <= 0:
        raise QueryError(f"n_phases must be positive, got {n_phases}")
    if align is not None and align <= 0:
        raise QueryError(f"align must be positive, got {align}")
    if n_rows == 0:
        return [(0, 0)]
    n_phases = min(n_phases, n_rows)
    base = n_rows // n_phases
    boundaries = []
    start = 0
    for i in range(n_phases):
        stop = start + base + (1 if i < n_rows % n_phases else 0)
        boundaries.append(stop)
        start = stop
    if align is not None and align < n_rows:
        snapped = []
        floor = 0
        for stop in boundaries[:-1]:
            aligned = round(stop / align) * align
            aligned = min(max(aligned, floor), n_rows)
            snapped.append(aligned)
            floor = aligned
        boundaries = snapped + [n_rows]
    ranges = []
    start = 0
    for stop in boundaries:
        ranges.append((start, stop))
        start = stop
    return ranges
