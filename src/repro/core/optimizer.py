"""Workload-level adaptive optimizer (the rung above §4.1 sharing).

The sharing planner (:mod:`repro.core.sharing`) applies the paper's
optimizations *statically*; this module optimizes the **whole phase
workload** from observed statistics.  A :class:`WorkloadOptimizer` sits
between the planner and the dispatcher and makes four decisions, each with
its own ablation toggle on :class:`~repro.config.OptimizerConfig` and each
recorded on :attr:`~repro.core.engine.EngineRun.optimizer_decisions`:

1. **Adaptive dense/sparse grouping** — after the first phase executes, the
   optimizer knows every query's *measured* group count and its
   stride-encoded key-domain size, so it can move the dense-grouping cap
   (:attr:`repro.db.storage.StorageEngine.dense_group_limit`) off the
   static ``_DENSE_GROUP_LIMIT`` guess: key spaces above the static cap
   with healthy occupancy switch to the O(n) ``bincount`` plan.  Dense and
   sparse plans are bitwise-equal (see :mod:`repro.db.groupby` /
   :mod:`repro.db.streaming`), so the move never changes a result bit.
2. **Adaptive streaming granularity** — the engine's static formula
   converts ``memory_budget_bytes`` to ``stream_chunk_rows`` ignoring the
   per-group aggregation state that shares the budget.  After phase one
   the optimizer knows that footprint and re-derives the chunk rows from
   what is actually left.  Streaming granularity is value-identical by the
   carry-seeded merge, so this too is result-safe.
3. **Multi-aggregate fusion** — :func:`fuse_plan` merges
   :class:`~repro.core.sharing.PlannedQuery`'s that share (table, group-by
   key, predicate, derived columns) into single multi-aggregate passes —
   §4.1 COMB applied *across* the planner's ``max_aggregates_per_query``
   chunks.  Per-aggregate computations are independent and the group set
   depends only on the keys, so each view reads exactly the numbers it
   would have read from its unfused query.
4. **Session-model cache prefetch** — :func:`plan_prefetch` scores each
   recommended view with the §6.2 bookmark model
   (:func:`repro.study.sessions.bookmark_probability`) and nominates the
   drill-downs an analyst is statistically likely to request next; the
   serving layer executes them in the background to warm the shared
   :class:`~repro.core.cache.ViewResultCache`.

Decisions 1–2 mutate the storage engine's tuning attributes *between*
phases; decision 3 rewrites the plan before dispatch; decision 4 is a pure
planning function the service layer consumes.  The differential oracle's
optimizer leg runs whole engines with every toggle on and off and asserts
bitwise-identical top-k, utilities, and distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import OptimizerConfig
from repro.core.sharing import PlannedQuery, SharingPlan
from repro.db.groupby import _DENSE_GROUP_LIMIT
from repro.db.query import AggregateQuery, QueryResult
from repro.db.storage import StorageEngine
from repro.study.sessions import bookmark_probability

#: Distinct values a derived flag column can take, by flag kind: the
#: one-bit flag is {0, 1}; the two-bit flag is {1, 2, 3} (rows matching
#: neither predicate are filtered out by WHERE).
_FLAG_CARDINALITY = {"one_bit": 2, "two_bit": 3}


# --------------------------------------------------------------------------- #
# decision 3: multi-aggregate fusion (pure plan rewrite)
# --------------------------------------------------------------------------- #


def _fusion_key(planned: PlannedQuery) -> tuple | None:
    """Grouping key under which two planned queries are one physical pass.

    Two queries fuse when everything except their aggregate list matches:
    same table, group-by key set, predicate, derived columns, group budget,
    and row range.  ``None`` marks a query that must not fuse (unhashable
    predicate/derived literals — rare, but a cache-key convention shared
    with :mod:`repro.db.shared_scan`).
    """
    query = planned.query
    try:
        return (
            query.table,
            query.group_by,
            query.predicate,
            query.derived,
            query.group_budget,
            query.row_range,
            planned.flag_alias,
            planned.flag_kind,
        )
    except TypeError:  # pragma: no cover - expressions are hashable today
        return None


def fuse_plan(plan: SharingPlan) -> tuple[SharingPlan, int]:
    """Merge same-key planned queries into multi-aggregate passes.

    Returns the (possibly) rewritten plan and the number of queries fused
    away.  Result-safe by construction: the fused query's group set is
    determined by the (unchanged) keys and predicate, each aggregate column
    is computed independently of the others, and every route still reads
    its own alias — so each view receives bitwise the numbers its unfused
    query would have produced, in the same per-view order.
    """
    buckets: dict[tuple, int] = {}
    fused: list[PlannedQuery | None] = []
    for planned in plan.queries:
        key = _fusion_key(planned)
        if key is None:
            fused.append(planned)
            continue
        slot = buckets.get(key)
        if slot is None:
            buckets[key] = len(fused)
            fused.append(planned)
            continue
        host = fused[slot]
        assert host is not None
        seen = {spec.alias for spec in host.query.aggregates}
        extra = tuple(
            spec for spec in planned.query.aggregates if spec.alias not in seen
        )
        fused[slot] = PlannedQuery(
            query=replace(host.query, aggregates=host.query.aggregates + extra),
            routes=host.routes + planned.routes,
            flag_alias=host.flag_alias,
            flag_kind=host.flag_kind,
        )
        fused.append(None)
    queries = tuple(p for p in fused if p is not None)
    return SharingPlan(queries), len(plan.queries) - len(queries)


# --------------------------------------------------------------------------- #
# decision 4: session-model cache prefetch (pure planning)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PrefetchCandidate:
    """One drill-down the bookmark model predicts the analyst requests next."""

    dimension: str
    measure: str
    func: str
    #: The view's most deviating group — the drill-down clause value, the
    #: same handle :class:`repro.service.sessions.AnalystDrillDown` uses.
    group: object
    utility: float
    #: §6.2 bookmark probability of the view that anchors the drill-down.
    probability: float


def plan_prefetch(run, config: OptimizerConfig) -> list[PrefetchCandidate]:
    """Drill-down views worth pre-warming, best-first.

    Mirrors :class:`~repro.service.sessions.AnalystDrillDown`: an analyst
    bookmarks a recommended view with probability
    ``bookmark_probability(utility)`` and then drills into its most
    deviating group.  Views clearing ``prefetch_min_probability`` are
    returned in rank order, capped at ``prefetch_limit``.
    """
    candidates: list[PrefetchCandidate] = []
    for key in run.selected:
        if len(candidates) >= max(config.prefetch_limit, 0):
            break
        utility = float(run.utilities.get(key, 0.0))
        probability = bookmark_probability(utility)
        if probability < config.prefetch_min_probability:
            continue
        dists = run.distributions.get(key)
        if dists is None or not len(dists.keys):
            continue
        index = int(np.argmax(np.abs(dists.target - dists.reference)))
        candidates.append(
            PrefetchCandidate(
                dimension=str(key[0]),
                measure=str(key[1]),
                func=str(key[2]),
                group=dists.keys[index],
                utility=utility,
                probability=probability,
            )
        )
    return candidates


# --------------------------------------------------------------------------- #
# decisions 1–2: per-phase store tuning from observed statistics
# --------------------------------------------------------------------------- #


class WorkloadOptimizer:
    """Per-run adaptive planner: observe phase one, tune the rest.

    One instance serves one engine run.  The engine calls
    :meth:`transform` on every phase's plan (fusion) and
    :meth:`observe_phase` after the first phase executes (store tuning);
    :meth:`decisions` is recorded on the run for attribution.

    Example::

        optimizer = WorkloadOptimizer(config.optimizer, store, meta,
                                      config.memory_budget_bytes)
        plan = optimizer.transform(plan_queries(...))
        outcomes = execute(plan)
        optimizer.observe_phase(plan, [r for r, _ in outcomes])
        run.optimizer_decisions = optimizer.decisions()
    """

    def __init__(
        self,
        config: OptimizerConfig,
        store: StorageEngine,
        meta,
        memory_budget_bytes: int | None = None,
    ) -> None:
        self.config = config
        self.store = store
        self.meta = meta
        self.memory_budget_bytes = memory_budget_bytes
        self._observed = False
        self._flag_kind: str | None = None
        self._fused_away = 0
        self._plans_seen = 0
        self._grouping: dict[str, object] = {
            "enabled": config.adaptive_grouping,
            "applied": False,
            "dense_limit": None,
        }
        self._chunking: dict[str, object] = {
            "enabled": config.adaptive_chunking,
            "applied": False,
            "stream_chunk_rows": store.stream_chunk_rows,
        }

    # -- decision 3 ----------------------------------------------------- #

    def transform(self, plan: SharingPlan) -> SharingPlan:
        """Apply the plan-level rewrites (currently: aggregate fusion)."""
        self._plans_seen += 1
        if not self.config.fuse_aggregates:
            return plan
        plan, fused = fuse_plan(plan)
        self._fused_away += fused
        return plan

    # -- decisions 1–2 --------------------------------------------------- #

    def _stride_product(self, query: AggregateQuery) -> int:
        """Size of the query's stride-encoded composite key domain.

        Physical dimensions group on the table's global dictionary, so
        their cardinality is the catalog's distinct count; derived flag
        columns factorize to at most :data:`_FLAG_CARDINALITY` values.
        Unknown derived keys pessimistically contribute their measured
        group count (handled by the caller via the measured total).
        """
        product = 1
        for name in query.group_by:
            if name in self.meta.distinct_counts:
                product *= max(self.meta.distinct_counts[name], 1)
            else:
                product *= _FLAG_CARDINALITY.get(self._flag_kind or "", 2)
        return product

    def observe_phase(
        self, plan: SharingPlan, results: list[QueryResult]
    ) -> None:
        """Fold the first executed phase's measurements into store tuning.

        Only the first observation tunes (later phases inherit); both
        decisions mutate the store's tuning attributes, which every
        executor — per-query, shared-scan, and the process-pool workers
        via shipped overrides — reads on its next dispatch.
        """
        if self._observed or not results:
            return
        self._observed = True
        per_query: list[tuple[int, int, int]] = []  # (product, groups, n_aggs)
        for planned, result in zip(plan.queries, results):
            if result is None:
                continue
            self._flag_kind = planned.flag_kind
            product = self._stride_product(planned.query)
            per_query.append(
                (product, int(result.n_groups), len(planned.query.aggregates))
            )
        self._flag_kind = None
        if not per_query:
            return
        if self.config.adaptive_grouping:
            self._tune_grouping(per_query)
        if self.config.adaptive_chunking:
            self._tune_chunking(per_query)

    def _tune_grouping(self, per_query: list[tuple[int, int, int]]) -> None:
        """Raise the dense cap over key domains measured worth it.

        A key domain above the static ``_DENSE_GROUP_LIMIT`` runs the
        sparse sort; when its measured occupancy (groups / domain) clears
        ``dense_occupancy_threshold`` and the domain fits
        ``dense_limit_max``, the O(domain) dense allocation is cheap
        relative to the sort and the optimizer raises the cap to cover it.
        """
        best: int | None = None
        measurements = []
        for product, groups, _ in per_query:
            occupancy = groups / product if product else 0.0
            measurements.append(
                {"domain": product, "groups": groups, "occupancy": round(occupancy, 6)}
            )
            if (
                product > _DENSE_GROUP_LIMIT
                and product <= self.config.dense_limit_max
                and occupancy >= self.config.dense_occupancy_threshold
            ):
                best = product if best is None else max(best, product)
        self._grouping["measurements"] = measurements
        if best is not None:
            self.store.dense_group_limit = int(best)
            self._grouping["applied"] = True
            self._grouping["dense_limit"] = int(best)

    def _tune_chunking(self, per_query: list[tuple[int, int, int]]) -> None:
        """Re-derive the streaming chunk rows net of group-state bytes.

        The engine's static formula spends the whole memory budget on chunk
        residency; during a shared-scan phase every query's aggregator state
        is resident too.  Estimate that footprint from the measured group
        counts (keys + counts + one float64 partial per aggregate) and
        re-split the budget.
        """
        if self.memory_budget_bytes is None:
            return
        state_bytes = sum(
            groups * (n_aggs + 2) * 8 for _, groups, n_aggs in per_query
        )
        per_row = max(self.store.table.physical_row_bytes(), 1)
        budget_rows = max((self.memory_budget_bytes - state_bytes) // per_row, 1)
        self._chunking["group_state_bytes"] = int(state_bytes)
        current = self.store.stream_chunk_rows
        if current is not None and budget_rows < current:
            self.store.stream_chunk_rows = int(budget_rows)
            self._chunking["applied"] = True
            self._chunking["stream_chunk_rows"] = int(budget_rows)

    # -- attribution ----------------------------------------------------- #

    def decisions(self) -> dict[str, object]:
        """The attribution record for :attr:`EngineRun.optimizer_decisions`."""
        return {
            "enabled": True,
            "fusion": {
                "enabled": self.config.fuse_aggregates,
                "queries_fused_away": self._fused_away,
                "plans_transformed": self._plans_seen,
            },
            "grouping": dict(self._grouping),
            "chunking": dict(self._chunking),
            "prefetch": {"enabled": self.config.prefetch},
        }


__all__ = [
    "PrefetchCandidate",
    "WorkloadOptimizer",
    "fuse_plan",
    "plan_prefetch",
]
