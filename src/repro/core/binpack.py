"""First-fit bin packing for the group-by combining optimization.

Paper §4.1 (Problem 4.1, Optimal Grouping): partition the dimension
attributes into groups so that any single query grouping by one group keeps
its estimated distinct-group count — the product of the attributes'
cardinalities — under the memory budget.  Taking logs turns the product
constraint into a sum constraint, i.e. classical bin packing with item
weight ``log |a_i|`` and bin size ``log budget``; the paper uses the
standard first-fit algorithm, as do we.

Attributes whose single-attribute cardinality already exceeds the budget
get singleton bins: the query must run regardless, and pairing it with
anything else only makes the overflow worse.
"""

from __future__ import annotations

import math

from repro.exceptions import QueryError


def first_fit(weights: list[float], capacity: float) -> list[list[int]]:
    """Classic first-fit: place each item into the first bin it fits.

    Returns bins as lists of item indices (insertion order preserved).
    Items heavier than the capacity get their own bin.
    """
    if capacity <= 0:
        raise QueryError(f"bin capacity must be positive, got {capacity}")
    bins: list[list[int]] = []
    loads: list[float] = []
    for index, weight in enumerate(weights):
        if weight > capacity:
            bins.append([index])
            loads.append(weight)
            continue
        for b, load in enumerate(loads):
            if load + weight <= capacity and loads[b] + weight <= capacity:
                bins[b].append(index)
                loads[b] += weight
                break
        else:
            bins.append([index])
            loads.append(weight)
    return bins


def pack_dimensions(
    dimensions: list[str], distinct_counts: dict[str, int], budget: int
) -> list[list[str]]:
    """Group dimension attributes under a distinct-group memory budget.

    ``budget <= 1`` degenerates to singleton groups (no combining), which is
    how the column store is configured in the paper's tuned setup.
    """
    if budget <= 1:
        return [[d] for d in dimensions]
    capacity = math.log(budget)
    weights = [math.log(max(distinct_counts.get(d, 1), 1)) for d in dimensions]
    bins = first_fit(weights, capacity)
    return [[dimensions[i] for i in bin_indices] for bin_indices in bins]


def estimated_groups(dimensions: list[str], distinct_counts: dict[str, int]) -> int:
    """Upper bound on distinct groups for a combined group-by."""
    product = 1
    for d in dimensions:
        product *= max(distinct_counts.get(d, 1), 1)
    return product
