"""The SeeDB facade — the library's main entry point.

Wraps a database table in the full middleware stack (storage engine, cost
model, view generator, execution engine) and exposes
:meth:`SeeDB.recommend`, mirroring the paper's problem statement: given
query Q (a target predicate), reference D_R, utility metric, and k, return
the k aggregate views with the largest deviation-based utility.

Example::

    from repro import SeeDB
    from repro.data import build
    from repro.db.expressions import eq

    seedb = SeeDB.over_table(build("census"))
    result = seedb.recommend(target=eq("marital_status", "Unmarried"), k=5)
    print(result.describe())
"""

from __future__ import annotations

from typing import Sequence

from repro.config import EngineConfig, StoreKind
from repro.core.cache import ViewResultCache
from repro.core.engine import EngineRun, ExecutionEngine, Parallelism, Strategy
from repro.core.result import Recommendation, RecommendationSet
from repro.core.sharing import ReferenceMode
from repro.core.view import AggregateView, ViewSpace
from repro.db.buffer import BufferPool
from repro.db.catalog import TableMeta
from repro.db.cost import CostModel
from repro.db.database import Database
from repro.db.expressions import Expression
from repro.db.query import AggregateFunction
from repro.db.storage import make_store
from repro.db.table import Table
from repro.exceptions import RecommendationError
from repro.metrics.base import DistanceFunction, get_metric


def tuned_config(store: StoreKind) -> EngineConfig:
    """The paper's tuned sharing settings (§5.3 "All Sharing Optimizations").

    ROW: combine all aggregates, bin-pack group-bys under the 10^4 budget,
    16 parallel queries.  COL: combine all aggregates, *no* group-by
    combining (their column store saw little gain), 16 parallel queries.
    """
    if store == "row":
        return EngineConfig(store="row", use_binpacking=True)
    return EngineConfig(store="col", use_binpacking=False, max_group_bys_per_query=1)


class SeeDB:
    """Visualization recommendation middleware over one table.

    The library's main entry point: wraps a table in the full stack
    (storage engine, execution backend, cost model, view generator,
    execution engine) and answers the paper's problem statement — given a
    target predicate, reference, metric, and k, return the k aggregate
    views with the largest deviation-based utility.

    Example::

        from repro import SeeDB
        from repro.data import build_info

        table, spec = build_info("census", scale="smoke")
        with SeeDB.over_table(table, store="col") as seedb:
            result = seedb.recommend(target=spec.target_predicate(), k=5)
            print(result.describe())          # ranked views + latencies
            run = seedb.run_engine(spec.target_predicate(), k=5)
            print(run.cache_hits, run.stats.queries_issued)

    Construction knobs: ``config`` (an :class:`~repro.config.EngineConfig`
    — backend, sharing, pruning, ``result_cache``), ``metric`` (name or
    :class:`~repro.metrics.base.DistanceFunction`), ``funcs`` (aggregate
    set F), ``buffer_pool``/``cost_model`` (I/O accounting), and
    ``result_cache`` (a shared
    :class:`~repro.core.cache.ViewResultCache` for cross-session reuse —
    see :mod:`repro.service`).  ``docs/api.md`` documents the full
    surface.
    """

    def __init__(
        self,
        database: Database,
        table_name: str,
        store: StoreKind = "col",
        config: EngineConfig | None = None,
        metric: str | DistanceFunction = "emd",
        funcs: Sequence[AggregateFunction] = (AggregateFunction.AVG,),
        buffer_pool: BufferPool | None = None,
        cost_model: CostModel | None = None,
        result_cache: ViewResultCache | None = None,
    ) -> None:
        self.database = database
        self.table = database.table(table_name)
        self.config = config or tuned_config(store)
        if self.config.store != store:
            self.config = self.config.with_(store=store)
        self.metric = get_metric(metric) if isinstance(metric, str) else metric
        self.funcs = tuple(funcs)
        self.store = make_store(store, self.table, buffer_pool)
        self.cost_model = cost_model or CostModel.for_store(store)
        self.engine = ExecutionEngine(
            self.store, self.metric, self.config, self.cost_model, result_cache
        )
        self.meta = TableMeta.of(self.table)

    @classmethod
    def over_table(cls, table: Table, **kwargs: object) -> "SeeDB":
        """Convenience constructor: register ``table`` in a fresh database."""
        database = Database()
        database.register(table)
        return cls(database, table.name, **kwargs)  # type: ignore[arg-type]

    def close(self) -> None:
        """Release engine/backend resources (sqlite connections).  Idempotent."""
        self.engine.close()

    def __enter__(self) -> "SeeDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # view space
    # ------------------------------------------------------------------ #

    def view_space(
        self,
        dimensions: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
    ) -> ViewSpace:
        """Candidate views (A x M x F), optionally analyst-restricted."""
        return ViewSpace.enumerate(self.meta, self.funcs, dimensions, measures)

    # ------------------------------------------------------------------ #
    # recommendation
    # ------------------------------------------------------------------ #

    def recommend(
        self,
        target: Expression,
        k: int = 10,
        reference: ReferenceMode = "all",
        reference_predicate: Expression | None = None,
        strategy: Strategy = "comb",
        pruner: str = "ci",
        dimensions: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
        parallelism: Parallelism = "modeled",
    ) -> RecommendationSet:
        """Recommend the top-``k`` visualizations for target query ``target``."""
        run = self.run_engine(
            target,
            k,
            reference=reference,
            reference_predicate=reference_predicate,
            strategy=strategy,
            pruner=pruner,
            dimensions=dimensions,
            measures=measures,
            parallelism=parallelism,
        )
        return self._to_recommendations(run)

    def run_engine(
        self,
        target: Expression,
        k: int = 10,
        reference: ReferenceMode = "all",
        reference_predicate: Expression | None = None,
        strategy: Strategy = "comb",
        pruner: str = "ci",
        dimensions: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
        views: Sequence[AggregateView] | None = None,
        parallelism: Parallelism = "modeled",
    ) -> EngineRun:
        """Lower-level entry point returning the raw :class:`EngineRun`."""
        space = list(views) if views is not None else list(self.view_space(dimensions, measures))
        if not space:
            raise RecommendationError("empty view space")
        return self.engine.run(
            space,
            target,
            k=k,
            strategy=strategy,
            pruner=pruner,
            reference_mode=reference,
            reference_predicate=reference_predicate,
            parallelism=parallelism,
        )

    def true_top_k(
        self,
        target: Expression,
        k: int,
        reference: ReferenceMode = "all",
        reference_predicate: Expression | None = None,
        dimensions: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
    ) -> EngineRun:
        """Exact top-k via a full, unpruned pass (ground truth for §5.4)."""
        return self.run_engine(
            target,
            k,
            reference=reference,
            reference_predicate=reference_predicate,
            strategy="sharing",
            pruner="none",
            dimensions=dimensions,
            measures=measures,
        )

    def _to_recommendations(self, run: EngineRun) -> RecommendationSet:
        space = {v.key: v for v in self.view_space()}
        recommendations = []
        for rank, key in enumerate(run.selected, start=1):
            recommendations.append(
                Recommendation(
                    view=space.get(key) or AggregateView(key[0], key[1]),
                    utility=run.utilities[key],
                    distributions=run.distributions[key],
                    rank=rank,
                )
            )
        return RecommendationSet(
            recommendations=tuple(recommendations),
            k=run.k,
            strategy=run.strategy,
            pruner=run.pruner_name,
            metric=self.metric.name,
            modeled_latency=run.modeled_latency,
            wall_seconds=run.wall_seconds,
            queries_issued=run.stats.queries_issued,
            phases_executed=run.phases_executed,
        )
