"""Cross-session view-result cache (the serving-layer memoization tier).

SeeDB is middleware between analysts and the DBMS, and interactive
exploration is dominated by *repeated* work: consecutive analyst steps —
and concurrent sessions exploring the same dataset — share almost all of
their view queries.  A :class:`ViewResultCache` memoizes executed
per-query results (:class:`~repro.db.query.QueryResult` plus the
:class:`~repro.config.ExecutionStats` of the execution that produced
them) keyed by a canonical fingerprint of

* **table identity + version** — a content hash of the backing arrays
  combined with :attr:`~repro.db.table.Table.version` (bumped by
  :meth:`~repro.db.table.Table.bump_version` on mutation, which
  invalidates every cached entry for the old contents);
* **query plan** — a structural rendering of the full logical
  :class:`~repro.db.query.AggregateQuery` (group-bys, aggregates,
  predicate, derived columns, group budget);
* **row range** — phased execution never confuses partial-range results
  with full-table ones;
* **backend semantics** — the backend's registry name, its
  ``capabilities().result_fingerprint``, and the storage-engine kind, so
  results (and their accounting) from one engine are never replayed as
  another's.

The cache is a plain LRU with a byte budget, safe for concurrent use from
many engine runs (one lock, no I/O under it beyond dict ops).  Lookups are
wired into :meth:`~repro.core.parallel.ParallelDispatcher.run_batch`:
cached queries are excluded from dispatch *before* shared-scan batching,
so a fully-warm phase performs no physical work at all.  Hit / miss /
bytes-saved accounting is carried per run on
:class:`~repro.config.ExecutionStats` and surfaced on
:class:`~repro.core.engine.EngineRun`.

The knob is :attr:`~repro.config.EngineConfig.result_cache` (default
**off** so the Figure 5-9 benchmark ablations keep measuring real
execution); the recommendation service (:mod:`repro.service`) turns it on
and shares one cache across every session and dataset engine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.config import ExecutionStats
from repro.db.query import AggregateQuery, QueryResult
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.backends.base import Backend
    from repro.db.storage import StorageEngine

#: Default cache capacity: plenty for thousands of per-phase view results
#: while staying far below a laptop's memory.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_MAX_ENTRIES = 16_384

#: Fixed per-entry overhead charged against the byte budget (keys, dict
#: slots, stats object) so even zero-row results have nonzero weight.
_ENTRY_OVERHEAD_BYTES = 512


# --------------------------------------------------------------------------- #
# canonical fingerprints
# --------------------------------------------------------------------------- #


def _value_key(value: object) -> str:
    """Stable structural rendering of one field value.

    ``repr`` alone is not enough: expression nodes render via ``to_sql``,
    which rejects non-finite float literals the native executor happily
    evaluates — the fingerprint must never raise on a query the engine can
    run.
    """
    if value is None:
        return "-"
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_value_key(v) for v in value) + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            _value_key(getattr(value, f.name)) for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({parts})"
    if isinstance(value, float):
        return repr(value)  # covers inf/nan deterministically
    return repr(value)


def query_fingerprint(query: AggregateQuery, *, include_row_range: bool = True) -> str:
    """Canonical fingerprint of one logical query plan, row range included.

    Structural, not textual: two queries get the same fingerprint iff every
    plan-relevant field (table name, group-bys, aggregate specs, predicate
    tree, derived columns, row range, group budget) is equal.  Aliases are
    included because :class:`~repro.db.query.QueryResult` keys its arrays
    by alias.

    ``include_row_range=False`` drops the row-range component: the delta
    cache keys partial-aggregation state by the *logical* query so a
    refresh over a grown table (same plan, longer range) still finds the
    state captured over the shorter one.
    """
    aggs = ";".join(
        f"{spec.func.value}:{_value_key(spec.argument)}:{spec.alias}"
        for spec in query.aggregates
    )
    derived = ";".join(
        f"{d.alias}={_value_key(d.expression)}" for d in query.derived
    )
    return "|".join(
        (
            query.table,
            ",".join(query.group_by),
            aggs,
            _value_key(query.predicate),
            derived,
            _value_key(query.row_range) if include_row_range else "*",
            _value_key(query.group_budget),
        )
    )


def execution_fingerprint(store: "StorageEngine", backend: "Backend") -> str:
    """Fingerprint of the execution context shared by a whole engine run.

    Combines the table's content+version fingerprint, the storage-engine
    kind (row/col page layouts charge different I/O into the cached
    stats), and the backend's identity + declared
    ``capabilities().result_fingerprint``.
    """
    caps = backend.capabilities()
    return "|".join(
        (
            store.table.fingerprint(),
            store.kind,
            backend.name,
            caps.result_fingerprint or "unversioned",
        )
    )


# --------------------------------------------------------------------------- #
# cache entries and statistics
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CacheEntry:
    """One memoized query execution.

    ``stats`` is the accounting of the execution that produced the result;
    on a hit its byte counters become the run's ``cache_bytes_saved``.
    ``nbytes`` is the entry's charge against the cache's byte budget.
    """

    result: QueryResult
    stats: ExecutionStats
    nbytes: int

    def bytes_saved(self) -> int:
        """Bytes of physical scanning a hit on this entry avoids."""
        return self.stats.bytes_scanned_miss + self.stats.bytes_scanned_hit


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of a cache's lifetime counters."""

    hits: int
    misses: int
    insertions: int
    evictions: int
    invalidations: int
    entries: int
    bytes: int
    max_bytes: int
    max_entries: int
    bytes_saved: int

    @property
    def hit_rate(self) -> float:
        """Lifetime hits / lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready dict (the service's ``GET /stats`` payload)."""
        payload: dict[str, object] = dataclasses.asdict(self)
        payload["hit_rate"] = self.hit_rate
        return payload


def _result_nbytes(result: QueryResult) -> int:
    """Byte weight of a result's arrays (plus fixed entry overhead)."""
    total = _ENTRY_OVERHEAD_BYTES
    for mapping in (result.groups, result.values):
        for array in mapping.values():
            arr = np.asarray(array)
            total += arr.nbytes
    return total


def _freeze(mapping: Mapping[str, object]) -> dict[str, np.ndarray]:
    """Return the mapping with every array marked read-only.

    Cached arrays are shared by every future hit; a consumer scribbling on
    one would silently corrupt all later sessions, so numpy is told to
    refuse.
    """
    frozen: dict[str, np.ndarray] = {}
    for name, array in mapping.items():
        arr = np.asarray(array)
        if arr.flags.writeable:
            try:
                arr.flags.writeable = False
            except ValueError:  # pragma: no cover - foreign base array
                arr = arr.copy()
                arr.flags.writeable = False
        frozen[name] = arr
    return frozen


# --------------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------------- #


class ViewResultCache:
    """Thread-safe LRU + byte-budget cache of executed view-query results.

    One instance is intended to be shared across *sessions* — every
    engine over every dataset in a serving process can use the same cache
    because keys embed the full execution fingerprint (see module
    docstring).  All operations are O(1) dict/linked-list work under one
    lock.

    Example::

        cache = ViewResultCache(max_bytes=64 << 20)
        engine = ExecutionEngine(store, metric, config.with_(result_cache=True),
                                 result_cache=cache)
        first = engine.run(views, target, k=5, strategy="sharing", pruner="none")
        again = engine.run(views, target, k=5, strategy="sharing", pruner="none")
        assert again.selected == first.selected
        assert again.cache_hits == first.cache_misses  # fully warm
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        """Create an empty cache bounded by ``max_bytes`` and ``max_entries``."""
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._invalidations = 0
        self._bytes_saved = 0

    # -------------------------------------------------------------- #
    # core operations
    # -------------------------------------------------------------- #

    def get(self, key: str) -> CacheEntry | None:
        """Return the entry for ``key`` (refreshing its LRU position) or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._bytes_saved += entry.bytes_saved()
            return entry

    def put(self, key: str, result: QueryResult, stats: ExecutionStats) -> CacheEntry:
        """Memoize one executed query; evicts LRU entries past the budgets.

        The result's arrays are marked read-only (they will be shared by
        every future hit).  Re-putting an existing key refreshes the entry.
        """
        frozen = QueryResult(
            groups=_freeze(result.groups),
            values=_freeze(result.values),
            n_groups=result.n_groups,
            input_rows=result.input_rows,
        )
        entry = CacheEntry(
            result=frozen, stats=stats, nbytes=_result_nbytes(frozen)
        )
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._insertions += 1
            while self._entries and (
                self._bytes > self.max_bytes or len(self._entries) > self.max_entries
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1
        return entry

    # -------------------------------------------------------------- #
    # invalidation
    # -------------------------------------------------------------- #

    def invalidate_table(self, table_fingerprint: str) -> int:
        """Drop every entry whose key was built over ``table_fingerprint``.

        Keys are prefixed by the execution fingerprint, which leads with
        the table fingerprint — call this after mutating a table in place
        (pair with :meth:`~repro.db.table.Table.bump_version`, which also
        reroutes *future* lookups away from the stale entries).  Returns
        the number of entries dropped.
        """
        prefix = table_fingerprint + "|"
        with self._lock:
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                self._bytes -= self._entries.pop(key).nbytes
            self._invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (lifetime counters are preserved)."""
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently charged against the budget."""
        with self._lock:
            return self._bytes

    def snapshot(self) -> CacheStats:
        """Consistent point-in-time :class:`CacheStats`."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
                max_entries=self.max_entries,
                bytes_saved=self._bytes_saved,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact one-line summary."""
        stats = self.snapshot()
        return (
            f"ViewResultCache(entries={stats.entries}, bytes={stats.bytes}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )


# --------------------------------------------------------------------------- #
# delta-state cache (append-aware view maintenance)
# --------------------------------------------------------------------------- #

#: Default byte budget for cached partial-aggregation states.
DEFAULT_DELTA_MAX_BYTES = 128 * 1024 * 1024
DEFAULT_DELTA_MAX_ENTRIES = 4_096


def delta_state_key(
    store: "StorageEngine", query: AggregateQuery, executor_sig: str = "native"
) -> str:
    """Cache key for one query's partial-aggregation state.

    Deliberately *excludes* the table fingerprint and the row range: the
    whole point is that the key still matches after an append changed
    both.  Identity instead anchors on the dataset (chunk-store path for
    disk-backed tables, object identity for in-memory ones), the storage
    kind, the executor's semantics, and the logical query plan; the
    *contents* the cached state covers are recorded per entry as
    ``(fingerprint, rows)`` and validated against the table's
    :attr:`~repro.db.table.Table.append_lineage` at lookup time.
    """
    table = store.table
    anchor = table.source_path or f"mem-{id(table)}"
    return "|".join(
        (
            "delta",
            table.name,
            anchor,
            store.kind,
            executor_sig,
            query_fingerprint(query, include_row_range=False),
        )
    )


@dataclass(frozen=True)
class DeltaState:
    """One cached partial-aggregation state.

    ``state`` is a :meth:`StreamingGroupAggregator.snapshot` covering rows
    ``[0, rows)`` of the table whose fingerprint was ``fingerprint`` at
    capture time.  It is valid for a table ``t`` iff ``t`` *is* that
    table (``t.fingerprint() == fingerprint`` and ``rows == t.nrows``) or
    ``t`` append-extends it (``t.append_lineage[fingerprint] == rows``) —
    then the refresh restores the snapshot and scans only rows past
    ``rows``.
    """

    state: dict[str, object]
    rows: int
    fingerprint: str
    nbytes: int


class DeltaStateCache:
    """LRU byte-budgeted cache of per-query partial-aggregation states.

    Sits beside :class:`ViewResultCache`: the result cache memoizes
    *finished* results under content-addressed keys (which an append
    necessarily reroutes), while this tier keeps the mergeable
    :class:`~repro.db.streaming.StreamingGroupAggregator` state so the
    first run after an append pays O(delta) instead of O(table).  Same
    locking discipline as :class:`ViewResultCache`; snapshots are deep
    copies on both ends, so entries are immune to concurrent updates.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_DELTA_MAX_BYTES,
        max_entries: int = DEFAULT_DELTA_MAX_ENTRIES,
    ) -> None:
        """Create an empty cache bounded by ``max_bytes``/``max_entries``."""
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: OrderedDict[str, DeltaState] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    def get(self, key: str) -> DeltaState | None:
        """The cached state for ``key`` (LRU-refreshed), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(
        self, key: str, state: dict[str, object], rows: int, fingerprint: str, nbytes: int
    ) -> DeltaState:
        """Store one snapshot; evicts LRU entries past the budgets."""
        entry = DeltaState(
            state=state,
            rows=rows,
            fingerprint=fingerprint,
            nbytes=nbytes + _ENTRY_OVERHEAD_BYTES,
        )
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._insertions += 1
            while self._entries and (
                self._bytes > self.max_bytes or len(self._entries) > self.max_entries
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently charged against the budget."""
        with self._lock:
            return self._bytes

    def counters(self) -> dict[str, int]:
        """Lifetime counters (JSON-ready, for ``GET /v1/stats``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "insertions": self._insertions,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }


# --------------------------------------------------------------------------- #
# cross-process L2 tier
# --------------------------------------------------------------------------- #

#: Default byte budget for the file-backed L2 tier.
DEFAULT_L2_MAX_BYTES = 1024 * 1024 * 1024

#: Suffix for L2 entry files (anything else in the directory is ignored).
_L2_SUFFIX = ".viewcache"

#: Age after which an orphaned L2 temp file is presumed abandoned (no
#: legitimate write takes anywhere near this long) and swept by _prune.
_TMP_GRACE_SECONDS = 15 * 60

#: Bytes of the integrity trailer appended to every L2 entry file: the
#: SHA-256 digest of the pickle blob that precedes it.
_L2_TRAILER_BYTES = 32


class FileCacheTier:
    """File-backed cache tier shared by every process pointed at one dir.

    Each entry is one file named by the SHA-256 of its cache key, holding
    a pickle of ``(key, QueryResult, ExecutionStats)`` — the key is stored
    inside the payload too, so a (cosmically unlikely) hash collision or a
    foreign file reads as a miss rather than a wrong answer — followed by
    a 32-byte SHA-256 trailer over the pickle bytes.  Reads verify the
    trailer before unpickling; an entry that fails (torn write surviving a
    crash, bit rot, a truncating copy) is **quarantined** — deleted on the
    spot and counted in :attr:`quarantined` — and reads as a clean miss,
    never as garbage handed to ``pickle.loads``.  Writes go to a unique
    temp file first and land via :func:`os.replace`, so concurrent readers
    in sibling worker processes never observe a torn entry.  All failure
    modes (missing file, corrupt pickle, full disk) degrade to a miss /
    dropped write: the tier is an accelerator, never a correctness
    dependency.
    """

    def __init__(
        self, directory: str | Path, max_bytes: int = DEFAULT_L2_MAX_BYTES
    ) -> None:
        """Create (if needed) ``directory`` and bound it by ``max_bytes``."""
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._quarantined = 0
        self._quarantine_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / (
            hashlib.sha256(key.encode()).hexdigest() + _L2_SUFFIX
        )

    @property
    def quarantined(self) -> int:
        """Entries deleted because their integrity trailer failed."""
        with self._quarantine_lock:
            return self._quarantined

    def _quarantine(self, path: Path) -> None:
        """Delete a corrupt entry so it cannot poison later reads."""
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - concurrent delete
            pass
        with self._quarantine_lock:
            self._quarantined += 1

    def get(self, key: str) -> tuple[QueryResult, ExecutionStats] | None:
        """Load one entry, or None on miss/corruption/collision.

        Corruption (trailer mismatch, too-short file, or an undecodable
        pickle behind a valid-looking trailer) quarantines the entry.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if len(blob) <= _L2_TRAILER_BYTES:
            self._quarantine(path)
            return None
        body, trailer = blob[:-_L2_TRAILER_BYTES], blob[-_L2_TRAILER_BYTES:]
        if hashlib.sha256(body).digest() != trailer:
            self._quarantine(path)
            return None
        try:
            stored_key, result, stats = pickle.loads(body)
        except (pickle.PickleError, ValueError, EOFError, IndexError, TypeError):
            self._quarantine(path)
            return None
        if stored_key != key:  # pragma: no cover - hash collision guard
            return None
        return result, stats

    def put(self, key: str, result: QueryResult, stats: ExecutionStats) -> bool:
        """Persist one entry atomically; returns False when dropped.

        Entries larger than the whole tier budget are dropped up front;
        after a successful write the tier prunes oldest-first back under
        ``max_bytes`` (best-effort — concurrent pruners may race, and a
        file deleted under us is simply skipped).
        """
        body = pickle.dumps((key, result, stats), protocol=pickle.HIGHEST_PROTOCOL)
        blob = body + hashlib.sha256(body).digest()
        if len(blob) > self.max_bytes:
            return False
        path = self._path(key)
        tmp = path.with_suffix(
            f".tmp-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - cleanup best-effort
                pass
            return False
        faults.maybe_truncate(path, key)
        self._prune()
        return True

    def _entries(self) -> list[tuple[float, int, Path]]:
        """Live entry files as ``(mtime, size, path)`` (missing skipped)."""
        rows = []
        try:
            paths = list(self.directory.glob("*" + _L2_SUFFIX))
        except OSError:  # pragma: no cover - directory vanished
            return []
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((stat.st_mtime, stat.st_size, path))
        return rows

    def _prune(self) -> None:
        """Delete oldest entries until the tier fits ``max_bytes``.

        Also sweeps orphaned ``.tmp-<pid>-<tid>`` files: a writer that
        crashed between ``write_bytes`` and :func:`os.replace` leaves its
        temp file behind forever, and those escape the byte budget because
        :meth:`_entries` only counts ``*.viewcache`` files.  Anything
        older than :data:`_TMP_GRACE_SECONDS` cannot still be mid-write,
        so it is garbage.
        """
        cutoff = time.time() - _TMP_GRACE_SECONDS
        try:
            stale = list(self.directory.glob("*.tmp-*"))
        except OSError:  # pragma: no cover - directory vanished
            stale = []
        for tmp in stale:
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - concurrent sweep
                continue
        rows = sorted(self._entries())
        total = sum(size for _, size, _ in rows)
        for _, size, path in rows:
            if total <= self.max_bytes:
                break
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - concurrent prune
                continue
            total -= size

    def invalidate(self, key_prefix: str) -> int:
        """Drop entries whose stored key starts with ``key_prefix``."""
        dropped = 0
        for _, _, path in self._entries():
            try:
                stored_key = pickle.loads(path.read_bytes())[0]
            except (OSError, pickle.PickleError, ValueError, EOFError, IndexError):
                continue
            if isinstance(stored_key, str) and stored_key.startswith(key_prefix):
                try:
                    path.unlink(missing_ok=True)
                    dropped += 1
                except OSError:  # pragma: no cover - concurrent prune
                    continue
        return dropped

    def __len__(self) -> int:
        """Number of live entry files."""
        return len(self._entries())

    @property
    def nbytes(self) -> int:
        """Total bytes of live entry files."""
        return sum(size for _, size, _ in self._entries())

    def clear(self) -> None:
        """Delete every entry file."""
        for _, _, path in self._entries():
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - concurrent prune
                continue


class TieredViewResultCache(ViewResultCache):
    """Two-tier view-result cache: in-process L1 over a file-backed L2.

    The L1 is the plain :class:`ViewResultCache` (fast, per-process); the
    L2 is a :class:`FileCacheTier` directory shared by every sibling
    worker process of a sharded service, so session B on worker 2 can hit
    results session A on worker 1 already paid for.  Lookup order is
    L1 → L2 (an L2 hit is promoted into L1); every put lands in both.
    Per-tier hit/miss counters are kept separately from the base
    :class:`CacheStats` and surfaced by :meth:`tier_counters` (the
    service's ``GET /v1/stats`` payload).

    Drop-in for :class:`ViewResultCache` everywhere (the engine's
    dispatcher only calls ``get``/``put``).
    """

    def __init__(
        self,
        l2_dir: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        l2_max_bytes: int = DEFAULT_L2_MAX_BYTES,
    ) -> None:
        """An L1 bounded as usual over an L2 tier rooted at ``l2_dir``."""
        super().__init__(max_bytes=max_bytes, max_entries=max_entries)
        self.l2 = FileCacheTier(l2_dir, max_bytes=l2_max_bytes)
        self._tier_lock = threading.Lock()
        self._l1_hits = 0
        self._l1_misses = 0
        self._l2_hits = 0
        self._l2_misses = 0

    def get(self, key: str) -> CacheEntry | None:
        """L1 lookup, falling back to L2 (with promotion into L1)."""
        entry = super().get(key)
        if entry is not None:
            with self._tier_lock:
                self._l1_hits += 1
            return entry
        loaded = self.l2.get(key)
        if loaded is None:
            with self._tier_lock:
                self._l1_misses += 1
                self._l2_misses += 1
            return None
        result, stats = loaded
        entry = ViewResultCache.put(self, key, result, stats)
        # The base class booked the L1 probe as a miss, but the lookup as
        # a whole hit: reclassify so the aggregate CacheStats stay honest.
        with self._lock:
            self._misses -= 1
            self._hits += 1
            self._bytes_saved += entry.bytes_saved()
        with self._tier_lock:
            self._l1_misses += 1
            self._l2_hits += 1
        return entry

    def put(self, key: str, result: QueryResult, stats: ExecutionStats) -> CacheEntry:
        """Memoize in L1 and persist to the shared L2 (best-effort)."""
        entry = super().put(key, result, stats)
        self.l2.put(key, entry.result, stats)
        return entry

    def invalidate_table(self, table_fingerprint: str) -> int:
        """Invalidate both tiers; returns entries dropped from the L1."""
        dropped = super().invalidate_table(table_fingerprint)
        self.l2.invalidate(table_fingerprint + "|")
        return dropped

    def tier_counters(self) -> dict[str, int]:
        """Per-tier lifetime hit/miss counters (JSON-ready)."""
        with self._tier_lock:
            return {
                "l1_hits": self._l1_hits,
                "l1_misses": self._l1_misses,
                "l2_hits": self._l2_hits,
                "l2_misses": self._l2_misses,
                "l2_quarantined": self.l2.quarantined,
            }


__all__ = [
    "CacheEntry",
    "CacheStats",
    "DeltaState",
    "DeltaStateCache",
    "FileCacheTier",
    "TieredViewResultCache",
    "ViewResultCache",
    "delta_state_key",
    "execution_fingerprint",
    "query_fingerprint",
    "DEFAULT_DELTA_MAX_BYTES",
    "DEFAULT_DELTA_MAX_ENTRIES",
    "DEFAULT_L2_MAX_BYTES",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
]
