"""Process-parallel query execution over an on-disk chunk store.

``parallelism="real"`` runs each phase's queries on a thread pool — real
concurrency on the native backend's GIL-releasing hot paths, but still one
interpreter.  This module adds ``parallelism="process"``: a
:class:`ProcessPoolDispatcher` fans the phase's planned queries out to a
persistent ``ProcessPoolExecutor`` whose workers re-open the dataset's
chunk store via ``np.memmap`` (:func:`repro.db.chunks.open_table`).  Only
``(store_path, store_kind, query plan)`` tuples cross the process
boundary on the way out and small per-group aggregate arrays on the way
back — column data is never pickled.

**Bitwise identity** (the hard requirement shared with the thread
dispatcher) is preserved by fanning out *whole queries*, not chunk
partials.  Each worker executes a complete :class:`AggregateQuery` with
the standard executor, which internally streams chunk-at-a-time through
the carry-seeded :class:`~repro.db.streaming.StreamingGroupAggregator` —
so its per-query result is the exact one-shot left-to-right accumulation,
byte-identical to serial execution no matter which process runs it.
Merging *independently computed* chunk partials instead would
re-parenthesize the floating-point sums and drift in the last ulp (see
:mod:`repro.db.streaming`).  The parent gathers results in submission
order, the same determinism barrier the thread dispatcher uses.

Shared-scan batches are split into contiguous per-worker slices, each
served by one shared scan inside its worker.  Per-query results are
independent of batch composition (every query owns its aggregator; the
scan is shared, the grouping is not), so slicing changes only the I/O
accounting: each slice pays for its own scan, so ``bytes_scanned`` /
``rows_scanned`` exceed a single-process shared scan while results stay
identical.

The pool is process-global and persistent (spawn context — safe under
threaded servers), sized to the largest worker count requested so far;
worker processes cache one open backend per ``(store_path, kind)`` so a
session's second phase pays no re-open cost.  Call :func:`shutdown_pool`
to reclaim the workers (tests do; the service relies on process exit).
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Sequence

from repro.config import ExecutionStats
from repro.db.query import AggregateQuery, QueryResult
from repro.exceptions import RecommendationError
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.parallel import ExecutesQueries

# Deferred import: parallel.py imports nothing from here, so this module
# importing ParallelDispatcher at the top level is cycle-free.
from repro.core.parallel import ParallelDispatcher

# --------------------------------------------------------------------------- #
# the persistent pool (parent side)
# --------------------------------------------------------------------------- #

_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_pool_lock = threading.Lock()


def get_pool(n_workers: int) -> ProcessPoolExecutor:
    """The shared ``ProcessPoolExecutor``, grown to ``n_workers`` if needed.

    Spawn (not fork) context: the parent may be a threaded HTTP server,
    where forking risks duplicating held locks.  The pool persists across
    engine runs so workers amortize interpreter + numpy start-up and keep
    their memmap-backed tables open.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < n_workers:
            old = _pool
            _pool = ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _pool_workers = n_workers
            if old is not None:
                old.shutdown(wait=False)
        return _pool


def shutdown_pool() -> None:
    """Shut down the shared pool (idempotent; it is rebuilt on demand)."""
    global _pool, _pool_workers
    with _pool_lock:
        pool, _pool, _pool_workers = _pool, None, 0
    if pool is not None:
        pool.shutdown(wait=True)


def _rebuild_pool(broken: ProcessPoolExecutor, n_workers: int) -> ProcessPoolExecutor:
    """Replace a broken pool with a fresh one (thread-safe, idempotent).

    A ``BrokenProcessPool`` poisons the executor permanently — every
    later submit raises.  Concurrent phases may hit the same breakage;
    whichever arrives first swaps the global, the rest see the swap
    already happened (``_pool is not broken``) and just use the new pool.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is broken or _pool is None:
            _pool = ProcessPoolExecutor(
                max_workers=max(n_workers, _pool_workers, 1),
                mp_context=multiprocessing.get_context("spawn"),
            )
            _pool_workers = max(n_workers, _pool_workers, 1)
        current = _pool
    broken.shutdown(wait=False)
    return current


atexit.register(shutdown_pool)


# --------------------------------------------------------------------------- #
# recovery accounting (parent side)
# --------------------------------------------------------------------------- #

_recovery_lock = threading.Lock()
_recovery = {"broken_pools": 0, "batches_rerun": 0, "degraded_batches": 0}


def _count_recovery(key: str) -> None:
    with _recovery_lock:
        _recovery[key] += 1


def recovery_counters() -> dict[str, int]:
    """Lifetime pool-recovery counters for this process.

    ``broken_pools`` — times a phase batch hit ``BrokenProcessPool``;
    ``batches_rerun`` — batches that succeeded on the rebuilt pool;
    ``degraded_batches`` — batches that fell back to inline (thread-path)
    execution because the rebuilt pool broke again.
    """
    with _recovery_lock:
        return dict(_recovery)


def reset_recovery_counters() -> None:
    """Zero the recovery counters (test isolation)."""
    with _recovery_lock:
        for key in _recovery:
            _recovery[key] = 0


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #

#: Per-worker-process cache of open backends, keyed by (store_path, kind).
_worker_backends: dict[tuple[str, str], object] = {}


def _worker_backend(store_path: str, store_kind: str):
    """The worker's (cached) native backend over the memmap-opened store.

    On every reuse the cached table re-checks the on-disk manifest digest
    (:meth:`Table.refresh_from_disk` — one small JSON read): the store may
    have been appended to since this worker opened it, and serving the old
    memmaps would silently drop the new rows.
    """
    key = (store_path, store_kind)
    backend = _worker_backends.get(key)
    if backend is None:
        from repro.db.backends.native import NativeBackend
        from repro.db.chunks import open_table
        from repro.db.storage import make_store

        table = open_table(store_path)
        backend = NativeBackend(make_store(store_kind, table))  # type: ignore[arg-type]
        _worker_backends[key] = backend
    elif backend.store.table.refresh_from_disk():
        backend.store.sync_layout()
    return backend


def _apply_store_overrides(
    backend, stream_chunk_rows: int | None, dense_group_limit: int | None
) -> None:
    """Mirror the parent store's tuning overrides onto the worker's store.

    The workload optimizer adjusts ``stream_chunk_rows`` /
    ``dense_group_limit`` on the *parent's* store, but workers re-open the
    store fresh — so every task ships the current values and applies them
    unconditionally (``None`` resets, keeping reused workers in sync).
    Both knobs are execution-plan choices that never change a result bit.
    """
    backend.store.stream_chunk_rows = stream_chunk_rows
    backend.store.dense_group_limit = dense_group_limit


def _worker_execute(
    store_path: str,
    store_kind: str,
    query: AggregateQuery,
    stream_chunk_rows: int | None = None,
    dense_group_limit: int | None = None,
) -> tuple[QueryResult, ExecutionStats]:
    """Execute one whole query in the worker (module-level for pickling)."""
    faults.maybe_exit("break_pool_worker", store_path)
    backend = _worker_backend(store_path, store_kind)
    _apply_store_overrides(backend, stream_chunk_rows, dense_group_limit)
    return backend.execute(query)


def _worker_execute_batch(
    store_path: str,
    store_kind: str,
    queries: list[AggregateQuery],
    stream_chunk_rows: int | None = None,
    dense_group_limit: int | None = None,
) -> list[tuple[QueryResult, ExecutionStats]]:
    """Execute one shared-scan slice in the worker (one scan per slice)."""
    faults.maybe_exit("break_pool_worker", store_path)
    backend = _worker_backend(store_path, store_kind)
    _apply_store_overrides(backend, stream_chunk_rows, dense_group_limit)
    return backend.execute_batch(queries, fanout=None)


# --------------------------------------------------------------------------- #
# dispatcher (parent side)
# --------------------------------------------------------------------------- #


def _partition(queries: list[AggregateQuery], n_slices: int) -> list[list[AggregateQuery]]:
    """Split ``queries`` into up to ``n_slices`` contiguous non-empty slices."""
    n_slices = min(n_slices, len(queries))
    base, extra = divmod(len(queries), n_slices)
    slices: list[list[AggregateQuery]] = []
    start = 0
    for index in range(n_slices):
        stop = start + base + (1 if index < extra else 0)
        slices.append(queries[start:stop])
        start = stop
    return slices


class ProcessPoolDispatcher(ParallelDispatcher):
    """A :class:`ParallelDispatcher` that fans out to worker *processes*.

    Inherits the cache-probe/splice logic unchanged (the view-result cache
    lives in the parent; only misses are dispatched) and overrides the
    uncached path: per-query fan-out to the shared process pool, or — for
    shared-scan batches — contiguous per-worker slices each served by one
    scan inside its worker.  Results are gathered in submission order.

    ``close()`` intentionally does **not** shut the process pool down: the
    pool is shared and persistent (see :func:`get_pool`); use
    :func:`shutdown_pool` to reclaim it.

    **Crash recovery** (``pool_recovery=True``, the default): a worker
    dying mid-phase — OOM kill, segfaulting native code, an injected
    ``break_pool_worker`` fault — poisons the whole executor with
    ``BrokenProcessPool``.  The dispatcher then rebuilds the pool once and
    re-runs the failed phase batch from scratch; whole-query fan-out means
    the re-run is bitwise identical to an undisturbed run (each query is a
    complete left-to-right accumulation wherever it executes).  If the
    rebuilt pool breaks again on the same batch, the batch degrades to
    inline execution on the parent's own backend — same executor code,
    same store bytes, still bitwise identical, just without process
    parallelism.  See :func:`recovery_counters` for the accounting.
    """

    def __init__(
        self,
        executor: "ExecutesQueries",
        n_workers: int,
        use_batch: bool = False,
        *,
        store_path: str,
        store_kind: str,
        pool_recovery: bool = True,
    ) -> None:
        """Wrap ``executor``; workers re-open ``store_path`` as ``store_kind``."""
        super().__init__(executor, n_workers, use_batch)
        self._store_path = store_path
        self._store_kind = store_kind
        self.pool_recovery = pool_recovery

    def _fan_out(
        self, pool: ProcessPoolExecutor, batch: list[AggregateQuery]
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """Submit ``batch`` to ``pool``; gather in submission order."""
        # Ship the parent store's current tuning overrides with every task:
        # the optimizer may have moved them since the workers opened their
        # own copies of the store (see :func:`_apply_store_overrides`).
        store = getattr(self.executor, "store", None)
        chunk_rows = getattr(store, "stream_chunk_rows", None)
        dense_limit = getattr(store, "dense_group_limit", None)
        if self.use_batch and hasattr(self.executor, "execute_batch"):
            outcomes: list[tuple[QueryResult, ExecutionStats]] = []
            futures = [
                pool.submit(
                    _worker_execute_batch,
                    self._store_path,
                    self._store_kind,
                    part,
                    chunk_rows,
                    dense_limit,
                )
                for part in _partition(batch, self.n_workers)
            ]
            for future in futures:
                outcomes.extend(future.result())
            return outcomes
        futures = [
            pool.submit(
                _worker_execute,
                self._store_path,
                self._store_kind,
                query,
                chunk_rows,
                dense_limit,
            )
            for query in batch
        ]
        return [future.result() for future in futures]

    def _run_batch_uncached(
        self, queries: Sequence[AggregateQuery]
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """Dispatch misses to worker processes (submission-order gather)."""
        batch = list(queries)
        if self.n_workers <= 1 or len(batch) <= 1:
            # Inline on the parent's own backend: same executor code over
            # the same store bytes, so results are identical and the
            # single-query case skips a pickle round-trip.
            return super()._run_batch_uncached(batch)
        pool = get_pool(self.n_workers)
        try:
            return self._fan_out(pool, batch)
        except BrokenProcessPool:
            if not self.pool_recovery:
                raise
            _count_recovery("broken_pools")
            fresh = _rebuild_pool(pool, self.n_workers)
            try:
                outcomes = self._fan_out(fresh, batch)
            except BrokenProcessPool:
                # Rebuild didn't hold (e.g. a deterministic crasher in the
                # data path): give up on process parallelism for this
                # batch and run it inline — correctness over speed.
                _count_recovery("degraded_batches")
                return super()._run_batch_uncached(batch)
            _count_recovery("batches_rerun")
            return outcomes


def process_dispatcher(
    executor: "ExecutesQueries",
    n_workers: int,
    use_batch: bool = False,
    pool_recovery: bool = True,
) -> ProcessPoolDispatcher:
    """Build a :class:`ProcessPoolDispatcher` for ``executor`` or fail clearly.

    Requirements: the executor must be a backend over a storage engine
    (``.store``) whose table carries a ``source_path`` — i.e. the native
    backend over a table opened from an on-disk chunk store
    (:func:`repro.db.chunks.open_table`).  In-memory tables have no path a
    worker process could re-open, and pickling their columns is exactly
    what this mode exists to avoid.
    """
    store = getattr(executor, "store", None)
    table = getattr(store, "table", None)
    source_path = getattr(table, "source_path", None)
    if store is None or not getattr(executor, "name", "") == "native":
        raise RecommendationError(
            "process parallelism requires the native backend "
            f"(got {type(executor).__name__})"
        )
    if not source_path:
        raise RecommendationError(
            "process parallelism requires a table opened from an on-disk "
            "chunk store (repro.db.chunks.open_table); in-memory table "
            f"{getattr(table, 'name', '?')!r} has no source_path for "
            "worker processes to re-open"
        )
    return ProcessPoolDispatcher(
        executor,
        max(n_workers, 1),
        use_batch=use_batch,
        store_path=str(source_path),
        store_kind=str(getattr(store, "kind", "col")),
        pool_recovery=pool_recovery,
    )


__all__ = [
    "ProcessPoolDispatcher",
    "get_pool",
    "process_dispatcher",
    "recovery_counters",
    "reset_recovery_counters",
    "shutdown_pool",
]
