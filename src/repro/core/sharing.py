"""Sharing-based optimizations (paper §4.1): the query planner.

Given the set of views still alive, the planner emits the smallest set of
logical queries that serves them all, applying — each independently
switchable through :class:`~repro.config.EngineConfig` — the paper's four
sharing optimizations:

1. **Combine multiple aggregates**: all views sharing a group-by attribute
   merge their ``f(m)`` expressions into one query (chunked by the
   ``max_aggregates_per_query`` limit of Figure 7a's sweep).
2. **Combine multiple GROUP BYs**: dimension attributes are grouped —
   either naively in chunks of ``max_group_bys_per_query`` (the MAX_GB
   baseline of Figure 8b) or by first-fit bin packing under the store's
   memory budget (BP) — and one query groups by the whole set; the
   middleware later marginalizes each view's dimension back out, which is
   sound because COUNT/SUM/AVG/MIN/MAX are all decomposable.
3. **Combine target and reference**: instead of two predicated queries, one
   query adds a derived flag column (``CASE WHEN <target> THEN 1 ELSE 0
   END``) and groups by it.
4. **Parallelism** is not planned here — the engine batches the emitted
   queries ``n_parallel_queries`` at a time.

Each emitted :class:`PlannedQuery` carries routes telling the engine which
result columns feed which view's target/reference partial state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.config import EngineConfig
from repro.core.binpack import pack_dimensions
from repro.core.view import AggregateView
from repro.db.catalog import TableMeta
from repro.db.expressions import Arithmetic, CaseWhen, Expression, Lit, Not, Or
from repro.db.query import (
    AggregateFunction,
    AggregateQuery,
    AggregateSpec,
    DerivedColumn,
)
from repro.exceptions import RecommendationError

#: Name of the derived target/reference flag column in combined queries.
FLAG_ALIAS = "seedb_flag"

ReferenceMode = Literal["all", "complement", "query"]
Side = Literal["both", "target", "reference"]


@dataclass(frozen=True)
class ViewRoute:
    """How one view reads its numbers out of one query's result."""

    view: AggregateView
    dim_column: str
    agg_alias: str
    side: Side


@dataclass(frozen=True)
class PlannedQuery:
    """One logical query plus the views it serves."""

    query: AggregateQuery
    routes: tuple[ViewRoute, ...]
    #: Present when target and reference are combined via a flag column.
    flag_alias: str | None
    #: "one_bit" flag (1 = target row) or "two_bit" (2*target + reference).
    flag_kind: str | None


@dataclass(frozen=True)
class SharingPlan:
    """The full set of queries for one phase."""

    queries: tuple[PlannedQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)


def plan_queries(
    views: Sequence[AggregateView],
    meta: TableMeta,
    config: EngineConfig,
    target_predicate: Expression,
    reference_mode: ReferenceMode = "all",
    reference_predicate: Expression | None = None,
) -> SharingPlan:
    """Plan the query set serving ``views`` under ``config``.

    ``reference_mode`` selects the paper's three reference options: the
    whole dataset ("all", the default D_R = D), the complement
    ("complement", D - D_Q), or an arbitrary query ("query", D_Q' — needs
    ``reference_predicate``).
    """
    if not views:
        return SharingPlan(())
    if reference_mode == "query" and reference_predicate is None:
        raise RecommendationError("reference_mode='query' requires reference_predicate")

    views_by_dim: dict[str, list[AggregateView]] = {}
    for view in views:
        views_by_dim.setdefault(view.dimension, []).append(view)
    dimensions = list(views_by_dim)

    dim_groups = _group_dimensions(dimensions, meta, config)
    budget = config.group_budget()

    planned: list[PlannedQuery] = []
    for dim_group in dim_groups:
        group_views = [v for d in dim_group for v in views_by_dim[d]]
        for chunk in _chunk_aggregates(group_views, config.max_aggregates_per_query):
            planned.extend(
                _plan_one(
                    chunk,
                    dim_group,
                    meta.name,
                    budget,
                    config,
                    target_predicate,
                    reference_mode,
                    reference_predicate,
                )
            )
    return SharingPlan(tuple(planned))


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #


def _group_dimensions(
    dimensions: list[str], meta: TableMeta, config: EngineConfig
) -> list[list[str]]:
    if config.use_binpacking:
        return pack_dimensions(dimensions, meta.distinct_counts, config.group_budget())
    size = max(config.max_group_bys_per_query, 1)
    return [dimensions[i : i + size] for i in range(0, len(dimensions), size)]


def _chunk_aggregates(
    group_views: list[AggregateView], max_aggregates: int | None
) -> list[list[AggregateView]]:
    """Split a dimension group's views by the aggregates-per-query limit.

    Views are keyed by their (func, measure) aggregate; several views (one
    per dimension in the group) may share one aggregate, so the limit
    applies to *distinct* aggregates, not views.
    """
    agg_order: dict[str, list[AggregateView]] = {}
    for view in group_views:
        agg_order.setdefault(view.agg_alias, []).append(view)
    aliases = list(agg_order)
    if max_aggregates is None or max_aggregates <= 0:
        return [group_views]
    chunks = []
    for i in range(0, len(aliases), max_aggregates):
        chunk_aliases = aliases[i : i + max_aggregates]
        chunks.append([v for alias in chunk_aliases for v in agg_order[alias]])
    return chunks


def _aggregate_specs(chunk_views: list[AggregateView]) -> tuple[AggregateSpec, ...]:
    """Distinct aggregate output columns needed by the chunk's views."""
    specs: dict[str, AggregateSpec] = {}
    for view in chunk_views:
        if view.agg_alias in specs:
            continue
        if view.func is AggregateFunction.COUNT:
            specs[view.agg_alias] = AggregateSpec(AggregateFunction.COUNT, None, view.agg_alias)
        else:
            specs[view.agg_alias] = AggregateSpec(view.func, view.measure, view.agg_alias)
    return tuple(specs.values())


def _plan_one(
    chunk_views: list[AggregateView],
    dim_group: list[str],
    table_name: str,
    budget: int,
    config: EngineConfig,
    target_predicate: Expression,
    reference_mode: ReferenceMode,
    reference_predicate: Expression | None,
) -> list[PlannedQuery]:
    aggregates = _aggregate_specs(chunk_views)

    if config.combine_target_reference:
        derived, predicate, flag_kind = _combined_flag(
            target_predicate, reference_mode, reference_predicate
        )
        query = AggregateQuery(
            table=table_name,
            group_by=tuple(dim_group) + (FLAG_ALIAS,),
            aggregates=aggregates,
            predicate=predicate,
            derived=(derived,),
            group_budget=budget,
        )
        routes = tuple(
            ViewRoute(view, view.dimension, view.agg_alias, "both")
            for view in chunk_views
        )
        return [PlannedQuery(query, routes, FLAG_ALIAS, flag_kind)]

    target_query = AggregateQuery(
        table=table_name,
        group_by=tuple(dim_group),
        aggregates=aggregates,
        predicate=target_predicate,
        group_budget=budget,
    )
    reference_query = AggregateQuery(
        table=table_name,
        group_by=tuple(dim_group),
        aggregates=aggregates,
        predicate=_reference_only_predicate(
            target_predicate, reference_mode, reference_predicate
        ),
        group_budget=budget,
    )
    t_routes = tuple(
        ViewRoute(view, view.dimension, view.agg_alias, "target") for view in chunk_views
    )
    r_routes = tuple(
        ViewRoute(view, view.dimension, view.agg_alias, "reference")
        for view in chunk_views
    )
    return [
        PlannedQuery(target_query, t_routes, None, None),
        PlannedQuery(reference_query, r_routes, None, None),
    ]


def _combined_flag(
    target_predicate: Expression,
    reference_mode: ReferenceMode,
    reference_predicate: Expression | None,
) -> tuple[DerivedColumn, Expression | None, str]:
    """Derived flag column + row filter for a combined query.

    * "all"/"complement": one bit — 1 marks target rows; the engine reads
      reference mass from both flag groups ("all") or flag 0 only
      ("complement").  No WHERE clause: every row contributes somewhere.
    * "query": two bits — ``2*[target] + [reference]``; rows matching
      neither predicate are filtered out by WHERE.
    """
    target_bit = CaseWhen(target_predicate, Lit(1), Lit(0))
    if reference_mode in ("all", "complement"):
        return DerivedColumn(FLAG_ALIAS, target_bit), None, "one_bit"
    assert reference_predicate is not None
    reference_bit = CaseWhen(reference_predicate, Lit(1), Lit(0))
    two_bit = Arithmetic(
        "+", Arithmetic("*", Lit(2), target_bit), reference_bit
    )
    where = Or((target_predicate, reference_predicate))
    return DerivedColumn(FLAG_ALIAS, two_bit), where, "two_bit"


def _reference_only_predicate(
    target_predicate: Expression,
    reference_mode: ReferenceMode,
    reference_predicate: Expression | None,
) -> Expression | None:
    if reference_mode == "all":
        return None
    if reference_mode == "complement":
        return Not(target_predicate)
    return reference_predicate
