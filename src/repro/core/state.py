"""Per-view partial-result state for the phased framework.

Each candidate view owns one :class:`ViewState`: mergeable partial
aggregates for its target and reference sides, updated after every phase,
plus the history of utility estimates the pruners consume (one estimate per
phase, computed from everything accumulated so far — "partial results for
each aggregate view on the fractions from 1 through i are used to estimate
the quality of each view", paper §3).

Partials are *array-backed*, indexed by the dimension's global dictionary
code (stable across phases because :meth:`repro.db.table.Table.dictionary`
is computed once over the whole table).  Updates are vectorized
(``np.add.at`` / ``np.minimum.at``), which also makes marginalizing a
multi-attribute group-by back down to the view's single dimension free:
duplicate codes simply accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.difference import ViewDistributions
from repro.core.view import AggregateView
from repro.db.query import AggregateFunction
from repro.exceptions import RecommendationError
from repro.metrics.base import DistanceFunction
from repro.metrics.normalize import normalize_distribution


class SidePartial:
    """Mergeable aggregate state for one side (target or reference).

    Slot ``i`` corresponds to the dimension's i-th dictionary category.
    COUNT/SUM accumulate sums; AVG carries (weighted sum, count); MIN/MAX
    keep running extrema.  ``counts`` doubles as the presence indicator.
    """

    __slots__ = ("func", "sums", "counts", "extrema")

    def __init__(self, func: AggregateFunction, n_slots: int) -> None:
        self.func = func
        self.sums = np.zeros(n_slots)
        self.counts = np.zeros(n_slots)
        if func is AggregateFunction.MIN:
            self.extrema = np.full(n_slots, np.inf)
        elif func is AggregateFunction.MAX:
            self.extrema = np.full(n_slots, -np.inf)
        else:
            self.extrema = None  # type: ignore[assignment]

    def update(self, codes: np.ndarray, aggregated: np.ndarray, counts: np.ndarray) -> None:
        """Fold one phase's per-group results (aligned arrays) into state."""
        if len(codes) == 0:
            return
        counts = np.asarray(counts, dtype=np.float64)
        aggregated = np.asarray(aggregated, dtype=np.float64)
        np.add.at(self.counts, codes, counts)
        func = self.func
        if func in (AggregateFunction.SUM, AggregateFunction.COUNT):
            np.add.at(self.sums, codes, aggregated)
        elif func is AggregateFunction.AVG:
            np.add.at(self.sums, codes, aggregated * counts)
        elif func is AggregateFunction.MIN:
            np.minimum.at(self.extrema, codes, aggregated)
        elif func is AggregateFunction.MAX:
            np.maximum.at(self.extrema, codes, aggregated)

    def present(self) -> np.ndarray:
        """Boolean mask of slots that received any rows."""
        return self.counts > 0

    def values(self) -> np.ndarray:
        """Finalized per-slot aggregate values (0 where absent)."""
        func = self.func
        if func in (AggregateFunction.SUM, AggregateFunction.COUNT):
            return self.sums.copy()
        if func is AggregateFunction.AVG:
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(self.counts > 0, self.sums / np.maximum(self.counts, 1), 0.0)
        out = np.where(np.isfinite(self.extrema), self.extrema, 0.0)
        return out

    def total_rows(self) -> float:
        return float(self.counts.sum())

    def summary(self) -> dict[object, float]:
        """Dict view (category index -> value) for present slots."""
        mask = self.present()
        values = self.values()
        return {int(i): float(values[i]) for i in np.flatnonzero(mask)}


@dataclass
class ViewState:
    """Running target/reference partials and estimate history for one view."""

    view: AggregateView
    categories: np.ndarray

    def __post_init__(self) -> None:
        if len(self.categories) == 0:
            raise RecommendationError(
                f"view {self.view.describe()} has a dimension with no categories"
            )
        n = len(self.categories)
        self.target = SidePartial(self.view.func, n)
        self.reference = SidePartial(self.view.func, n)
        self.estimates: list[float] = []

    def _codes(self, keys: np.ndarray) -> np.ndarray:
        """Map group key values to dictionary codes (categories are sorted)."""
        return np.searchsorted(self.categories, keys)

    def update_target(
        self, keys: np.ndarray, aggregated: np.ndarray, counts: np.ndarray
    ) -> None:
        if len(keys):
            self.target.update(self._codes(keys), aggregated, counts)

    def update_reference(
        self, keys: np.ndarray, aggregated: np.ndarray, counts: np.ndarray
    ) -> None:
        if len(keys):
            self.reference.update(self._codes(keys), aggregated, counts)

    def utility(self, metric: DistanceFunction) -> tuple[float, ViewDistributions]:
        """Utility from everything accumulated so far (paper §2).

        Slots present on either side are aligned by construction (both
        partials are indexed by the same dictionary), normalized, and fed to
        the metric.  A view with an empty side has utility 0 — no evidence
        of deviation yet.
        """
        mask = self.target.present() | self.reference.present()
        if not self.target.present().any() or not self.reference.present().any():
            keys = tuple(self.categories[mask]) or ("?",)
            flat = np.full(max(len(keys), 1), 1.0 / max(len(keys), 1))
            return 0.0, ViewDistributions(keys, flat, flat.copy())
        keys = tuple(self.categories[mask])
        p = normalize_distribution(self.target.values()[mask])
        q = normalize_distribution(self.reference.values()[mask])
        return metric(p, q), ViewDistributions(keys, p, q)

    def record_estimate(self, metric: DistanceFunction) -> float:
        """Compute the current utility estimate and append it to history."""
        value, _ = self.utility(metric)
        self.estimates.append(value)
        return value

    def rows_seen(self) -> float:
        return self.target.total_rows() + self.reference.total_rows()
