"""The SeeDB execution engine: NO_OPT / SHARING / COMB / COMB_EARLY.

This is the phase-based framework of paper §3 combining both optimization
families:

* **NO_OPT** — two serial SQL queries per view over the full data; the
  paper's basic framework (Figures 5, 6).
* **SHARING** — one full pass with all sharing optimizations (§4.1), no
  pruning (Figures 5, 7–9).
* **COMB** — sharing + phased execution + a pruning strategy (§4.2); the
  view set shrinks across phases (Figures 5, 11–13).
* **COMB_EARLY** — COMB that stops as soon as the top-k is identified and
  returns approximate results from the partials accumulated so far
  (Figure 5's COMB_EARLY bars).

Every run returns an :class:`EngineRun` carrying the ranked views, their
distributions, full execution accounting, and the cost model's latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.config import EngineConfig, ExecutionStats
from repro.core.cache import (
    DeltaStateCache,
    ViewResultCache,
    execution_fingerprint,
    query_fingerprint,
)
from repro.core.difference import ViewDistributions
from repro.core.optimizer import WorkloadOptimizer
from repro.core.parallel import ParallelDispatcher, make_dispatcher
from repro.core.phases import phase_ranges
from repro.core.pruning import Pruner, make_pruner
from repro.core.sharing import (
    PlannedQuery,
    ReferenceMode,
    SharingPlan,
    plan_queries,
)
from repro.core.state import ViewState
from repro.core.view import AggregateView, ViewKey
from repro.db.backends import Backend, make_backend
from repro.db.catalog import TableMeta
from repro.db.cost import CostModel
from repro.db.expressions import Expression
from repro.db.query import QueryResult
from repro.db.sql import generate_sql
from repro.db.storage import StorageEngine
from repro.exceptions import QueryError, RecommendationError
from repro.metrics.base import DistanceFunction

Strategy = Literal["no_opt", "sharing", "comb", "comb_early"]
#: "modeled" runs queries serially and models parallel speedup in the cost
#: model only (the historical behaviour); "real" dispatches each batch onto
#: a thread pool of ``n_parallel_queries`` workers for true concurrency;
#: "process" fans the batch out to worker *processes* that re-open the
#: table's on-disk chunk store via ``np.memmap`` — true multi-core
#: execution with no GIL and no pickled column data (native backend over
#: an on-disk table only; see :mod:`repro.core.procpool`).
Parallelism = Literal["modeled", "real", "process"]

#: How many generated SQL strings to retain on a run (introspection only).
_MAX_RECORDED_SQL = 64


@dataclass(frozen=True)
class UnionRequest:
    """One request's inputs to :meth:`ExecutionEngine.run_union`.

    A frozen snapshot of everything a SHARING-strategy :meth:`run` call
    would take, so the serving tier's coalescing gateway can collect many
    concurrent requests and execute their union as one workload.
    """

    views: tuple[AggregateView, ...]
    target_predicate: Expression
    k: int
    reference_mode: ReferenceMode = "all"
    reference_predicate: Expression | None = None


@dataclass
class EngineRun:
    """Everything a strategy run produced.

    The raw record behind :class:`~repro.core.result.RecommendationSet`:
    the ranked ``selected`` view keys, per-view ``utilities`` and aligned
    ``distributions``, full :class:`~repro.config.ExecutionStats`
    accounting, the cost model's ``modeled_latency``, and how the run
    executed (``backend``, ``parallelism``, ``shared_scan``,
    ``result_cache`` and its hit/miss/bytes-saved counters).

    Example::

        run = seedb.run_engine(target, k=5, strategy="sharing", pruner="none")
        best_key, best_utility = run.top(1)[0]
        print(run.backend, run.stats.queries_issued, run.cache_hit_rate)
        for group in run.distributions[best_key].as_rows():
            print(group["group"], group["target"], group["reference"])
    """

    strategy: Strategy
    pruner_name: str
    k: int
    #: View keys ranked by (estimated) utility, best first — length k.
    selected: list[ViewKey]
    #: Final utility estimate per view that survived to the end.
    utilities: dict[ViewKey, float]
    #: Aligned target/reference distributions per surviving view.
    distributions: dict[ViewKey, ViewDistributions]
    stats: ExecutionStats
    modeled_latency: float
    wall_seconds: float
    phases_executed: int
    #: Number of views still active entering each phase.
    active_per_phase: list[int]
    sql: list[str] = field(default_factory=list)
    #: Execution mode the run used ("modeled" = serial queries, parallel
    #: speedup in the cost model only; "real" = thread-pool execution).
    parallelism: Parallelism = "modeled"
    #: Worker threads the dispatcher used (1 in modeled mode).
    n_workers: int = 1
    #: Execution backend the queries ran on ("native", "sqlite", ...).
    backend: str = "native"
    #: Whether phase batches were routed through the backend's shared-scan
    #: batch path (always False for NO_OPT, the no-sharing baseline).
    shared_scan: bool = False
    #: Whether this run consulted a view-result cache
    #: (``EngineConfig.result_cache``).
    result_cache: bool = False
    #: Queries served from the cache instead of being executed.
    cache_hits: int = 0
    #: Queries the cache missed and therefore actually dispatched (equals
    #: ``stats.queries_issued`` on cache-enabled runs; 0 when the cache
    #: was off).
    cache_misses: int = 0
    #: Physical bytes the hits avoided re-scanning.
    cache_bytes_saved: int = 0
    #: Attribution record of the workload optimizer's decisions
    #: (:meth:`repro.core.optimizer.WorkloadOptimizer.decisions`); empty
    #: when ``EngineConfig.optimizer.enabled`` was off for this run.
    optimizer_decisions: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses) for this run; 0.0 when the cache was off."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def top(self, n: int | None = None) -> list[tuple[ViewKey, float]]:
        ranked = sorted(self.utilities.items(), key=lambda kv: -kv[1])
        return ranked[: n or self.k]


class ExecutionEngine:
    """Runs one strategy over one table's view space.

    The engine is backend-agnostic middleware: it plans logical queries,
    ships them to the :class:`~repro.db.backends.Backend` selected by
    ``EngineConfig.backend`` ("native" numpy executor by default, "sqlite"
    for an independent SQL engine), and routes the per-group results into
    view state.  All four strategies and both parallelism modes produce
    identical ``selected``/utilities on any conforming backend.
    """

    def __init__(
        self,
        store: StorageEngine,
        metric: DistanceFunction,
        config: EngineConfig,
        cost_model: CostModel | None = None,
        result_cache: ViewResultCache | None = None,
        delta_cache: "DeltaStateCache | None" = None,
    ) -> None:
        self.store = store
        self.metric = metric
        self.config = config
        self.cost_model = cost_model or CostModel()
        # Out-of-core knobs: a pinned streaming granularity, or a memory
        # budget converted to one via the table's physical row width.  The
        # store's stream_ranges() combines this with the table's own chunk
        # layout; results are identical at any granularity.
        effective_chunk_rows = config.stream_chunk_rows
        if config.memory_budget_bytes is not None:
            per_row = max(store.table.physical_row_bytes(), 1)
            budget_rows = max(config.memory_budget_bytes // per_row, 1)
            effective_chunk_rows = (
                budget_rows
                if effective_chunk_rows is None
                else min(effective_chunk_rows, budget_rows)
            )
        # Assigned unconditionally: a store reused by a second engine must
        # not inherit the previous config's streaming granularity.  The
        # static value is kept so every run() can start from it before the
        # workload optimizer (if enabled) retunes mid-run.
        self._static_chunk_rows = (
            int(effective_chunk_rows) if effective_chunk_rows is not None else None
        )
        store.stream_chunk_rows = self._static_chunk_rows
        store.dense_group_limit = None
        self.backend: Backend = make_backend(config.backend, store)
        self.meta = TableMeta.of(store.table)
        # The cache is consulted iff the config knob is on; passing a
        # shared ViewResultCache (the serving layer does) makes hits
        # cross-session, otherwise the engine keeps a private one.
        if config.result_cache:
            self.result_cache: ViewResultCache | None = (
                result_cache if result_cache is not None else ViewResultCache()
            )
        else:
            self.result_cache = None
        # Delta-aware view maintenance: attach a DeltaStateCache to the
        # native executor so full-prefix queries run through the streaming
        # aggregator, snapshot their partial state, and — after an append —
        # restore it and scan only the new chunks.  Only the native backend
        # owns a QueryExecutor; external backends (sqlite) ignore the knob.
        #: Lifetime executed-work counters (queries actually dispatched,
        #: rows/bytes actually scanned — cache hits and coalesced shares
        #: excluded).  Unlike per-run stats these count each execution
        #: exactly once regardless of how many requests shared it, so the
        #: serving tier and benches can measure total physical work.
        self.executed_totals: dict[str, int] = {
            "queries_executed": 0,
            "rows_scanned": 0,
            "bytes_scanned": 0,
        }
        self.delta_cache: DeltaStateCache | None = None
        if config.result_cache and config.delta_cache:
            executor = getattr(self.backend, "executor", None)
            if executor is not None:
                self.delta_cache = (
                    delta_cache if delta_cache is not None else DeltaStateCache()
                )
                executor.delta_cache = self.delta_cache

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the backend's resources (sqlite connections).  Idempotent.

        The native backend holds nothing, so calling this is only required
        for engines on external backends — use the engine as a context
        manager when in doubt.
        """
        self.backend.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def run(
        self,
        views: Sequence[AggregateView],
        target_predicate: Expression,
        k: int,
        strategy: Strategy = "comb",
        pruner: str | Pruner = "ci",
        reference_mode: ReferenceMode = "all",
        reference_predicate: Expression | None = None,
        parallelism: Parallelism = "modeled",
    ) -> EngineRun:
        """Execute ``strategy`` and return the top-``k`` views.

        ``parallelism="real"`` runs each batch of planned queries on a
        thread pool of ``n_parallel_queries`` workers;
        ``parallelism="process"`` fans them out to worker processes over
        the table's on-disk chunk store (:mod:`repro.core.procpool`).
        Results are deterministic regardless of mode and worker count:
        batches are barriered and routed in submission order, so
        ``selected`` and ``utilities`` match a serial run exactly (see
        :mod:`repro.core.parallel`).
        """
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        if not views:
            raise RecommendationError("no candidate views to evaluate")
        started = time.perf_counter()

        config = self._strategy_config(strategy)
        # Every run starts from the static tuning: a previous run's
        # optimizer decisions must not leak into an ablation baseline.
        self.store.stream_chunk_rows = self._static_chunk_rows
        self.store.dense_group_limit = None
        # The workload optimizer never touches NO_OPT: that strategy *is*
        # the no-sharing baseline, and fusing its per-view queries would
        # reintroduce exactly the sharing it exists to ablate.
        optimizer: WorkloadOptimizer | None = None
        if config.optimizer.enabled and strategy != "no_opt":
            optimizer = WorkloadOptimizer(
                config.optimizer,
                self.store,
                self.meta,
                config.memory_budget_bytes,
            )
        use_phases = strategy in ("comb", "comb_early")
        early = strategy == "comb_early" or config.early_return
        align = None
        if config.chunk_aligned_phases:
            # The same grid stream_ranges() scans on — aligning to anything
            # else would let a phase boundary split a streamed chunk.
            align = self.store.effective_stream_chunk_rows()
        ranges = (
            phase_ranges(self.store.nrows, config.n_phases, align=align)
            if use_phases
            else [(0, self.store.nrows)]
        )

        pruner_obj: Pruner
        if use_phases:
            pruner_obj = pruner if isinstance(pruner, Pruner) else self._make_pruner(pruner)
        else:
            pruner_obj = make_pruner("none")
        pruner_obj.initialize([v.key for v in views], k, len(ranges))

        states: dict[ViewKey, ViewState] = {
            v.key: ViewState(v, self.store.table.categories(v.dimension))
            for v in views
        }
        active: dict[ViewKey, AggregateView] = {v.key: v for v in views}
        run_stats = ExecutionStats()
        sql_log: list[str] = []
        active_per_phase: list[int] = []
        phases_executed = 0

        total_rows = max(self.store.nrows, 1)
        previous_top_k: frozenset[ViewKey] = frozenset()
        stable_phases = 0
        # A backend that declares itself unsafe for concurrent execute()
        # calls is driven serially even in "real" mode — results are
        # identical by the dispatcher's determinism contract, just slower.
        n_workers = (
            config.n_parallel_queries
            if self.backend.capabilities().parallel_safe
            else 1
        )
        # One execution fingerprint per run: recomputed here (not cached on
        # the engine) so a Table.bump_version() between runs reroutes every
        # lookup away from stale entries.
        cache = self.result_cache
        cache_prefix = (
            execution_fingerprint(self.store, self.backend)
            if cache is not None
            else None
        )
        with make_dispatcher(
            self.backend,
            parallelism,
            n_workers,
            use_batch=config.shared_scan,
            pool_recovery=config.pool_recovery,
        ) as dispatcher:
            for phase_index, (start, stop) in enumerate(ranges):
                active_per_phase.append(len(active))
                plan = plan_queries(
                    list(active.values()),
                    self.meta,
                    config,
                    target_predicate,
                    reference_mode,
                    reference_predicate,
                )
                if optimizer is not None:
                    plan = optimizer.transform(plan)
                outcomes = self._execute_plan(
                    plan,
                    (start, stop),
                    config,
                    states,
                    run_stats,
                    sql_log,
                    reference_mode,
                    dispatcher,
                    cache,
                    cache_prefix,
                )
                if optimizer is not None:
                    optimizer.observe_phase(
                        plan, [result for result, _ in outcomes]
                    )
                phases_executed += 1

                if use_phases:
                    estimates = {
                        key: states[key].record_estimate(self.metric) for key in active
                    }
                    decision = pruner_obj.observe(
                        phase_index,
                        estimates,
                        rows_seen=max(stop, 1),
                        total_rows=total_rows,
                    )
                    for key in decision.pruned:
                        active.pop(key, None)
                    if early:
                        current_top_k = frozenset(
                            sorted(estimates, key=lambda key: -estimates[key])[:k]
                        )
                        stable_phases = (
                            stable_phases + 1 if current_top_k == previous_top_k else 0
                        )
                        previous_top_k = current_top_k
                        if self._top_k_identified(
                            pruner_obj, active, k, stable_phases, config
                        ):
                            break

        selected, utilities, distributions = self._finalize(
            states, active, pruner_obj, k
        )
        self._count_executed(run_stats)
        run_stats.wall_seconds = time.perf_counter() - started
        return EngineRun(
            strategy=strategy,
            pruner_name=pruner_obj.name,
            k=k,
            selected=selected,
            utilities=utilities,
            distributions=distributions,
            stats=run_stats,
            modeled_latency=self.cost_model.latency_seconds(run_stats),
            wall_seconds=run_stats.wall_seconds,
            phases_executed=phases_executed,
            active_per_phase=active_per_phase,
            sql=sql_log,
            parallelism=parallelism,
            n_workers=dispatcher.n_workers,
            backend=self.backend.name,
            shared_scan=config.shared_scan,
            result_cache=cache is not None,
            cache_hits=run_stats.cache_hits,
            cache_misses=run_stats.queries_issued if cache is not None else 0,
            cache_bytes_saved=run_stats.cache_bytes_saved,
            optimizer_decisions=(
                optimizer.decisions() if optimizer is not None else {}
            ),
        )

    def run_union(
        self,
        requests: Sequence[UnionRequest],
        parallelism: Parallelism = "modeled",
    ) -> list[EngineRun]:
        """Execute many SHARING requests as ONE dispatcher batch.

        The coalescing entry point (:mod:`repro.service.coalesce`): each
        request is planned exactly as its own ``run(strategy="sharing")``
        would plan it — single phase over the full row range, no pruning,
        per-request optimizer transform — then every request's ranged
        queries are concatenated into a single shared-scan batch, so the
        backend does one pass over the table for the whole union.

        Results are bitwise-identical to per-request serial runs: each
        query's result is computed from the same frozen column data
        regardless of which batch carried it, and per-request routing
        happens on this thread in the request's own plan order — the same
        floating-point accumulation sequence as an uncoalesced run.

        Only the *accounting* moves.  Queries that appear in more than one
        request (same result-cache fingerprint) execute once: the first
        request to submit the query owns its executed
        :class:`~repro.config.ExecutionStats`; every other request routes
        the same result but records just a ``coalesced_queries`` marker —
        extending the shared-scan split-charge scheme (pages charged once
        per batch, to the first toucher) across requests, so summing
        per-request stats still charges each executed query and each
        scanned page exactly once.
        """
        if not requests:
            return []
        for request in requests:
            if request.k <= 0:
                raise RecommendationError(f"k must be positive, got {request.k}")
            if not request.views:
                raise RecommendationError("no candidate views to evaluate")
        started = time.perf_counter()

        config = self._strategy_config("sharing")
        # Same per-run reset as run(): no tuning leaks between runs.
        self.store.stream_chunk_rows = self._static_chunk_rows
        self.store.dense_group_limit = None
        nrows = self.store.nrows
        cache = self.result_cache
        cache_prefix = (
            execution_fingerprint(self.store, self.backend)
            if cache is not None
            else None
        )

        # Plan every request exactly as its solo run would.
        planned_requests = []
        for request in requests:
            optimizer: WorkloadOptimizer | None = None
            if config.optimizer.enabled:
                optimizer = WorkloadOptimizer(
                    config.optimizer,
                    self.store,
                    self.meta,
                    config.memory_budget_bytes,
                )
            plan = plan_queries(
                list(request.views),
                self.meta,
                config,
                request.target_predicate,
                request.reference_mode,
                request.reference_predicate,
            )
            if optimizer is not None:
                plan = optimizer.transform(plan)
            ranged = [planned.query.with_range(0, nrows) for planned in plan.queries]
            keys = [
                f"{cache_prefix}|{query_fingerprint(query)}"
                if cache is not None
                else query_fingerprint(query)
                for query in ranged
            ]
            planned_requests.append((request, optimizer, plan, ranged, keys))

        # Deduplicate across requests before dispatch: run_batch probes the
        # cache per query but only memoizes *after* the batch executes, so
        # identical queries submitted together would each execute.  The
        # first (request, position) to submit a fingerprint owns it.
        union_queries: list = []
        union_keys: list[str] = []
        first_slot: dict[str, int] = {}
        slots: list[list[tuple[int, bool]]] = []
        for _, _, _, ranged, keys in planned_requests:
            request_slots: list[tuple[int, bool]] = []
            for query, key in zip(ranged, keys):
                position = first_slot.get(key)
                owner = position is None
                if owner:
                    position = len(union_queries)
                    first_slot[key] = position
                    union_queries.append(query)
                    union_keys.append(key)
                request_slots.append((position, owner))
            slots.append(request_slots)

        n_workers = (
            config.n_parallel_queries
            if self.backend.capabilities().parallel_safe
            else 1
        )
        with make_dispatcher(
            self.backend,
            parallelism,
            n_workers,
            use_batch=config.shared_scan,
            pool_recovery=config.pool_recovery,
        ) as dispatcher:
            if config.shared_scan:
                outcomes = dispatcher.run_batch(
                    union_queries, cache, union_keys if cache is not None else None
                )
            else:
                batch_size = max(config.n_parallel_queries, 1)
                outcomes = []
                for i in range(0, len(union_queries), batch_size):
                    outcomes.extend(
                        dispatcher.run_batch(
                            union_queries[i : i + batch_size],
                            cache,
                            union_keys[i : i + batch_size]
                            if cache is not None
                            else None,
                        )
                    )
            # Each outcome is one unique execution — count it exactly once
            # no matter how many requests share it below.
            for _, executed_stats in outcomes:
                self._count_executed(executed_stats)
            runs: list[EngineRun] = []
            batch_size = max(config.n_parallel_queries, 1)
            for (request, optimizer, plan, ranged, _), request_slots in zip(
                planned_requests, slots
            ):
                states: dict[ViewKey, ViewState] = {
                    v.key: ViewState(v, self.store.table.categories(v.dimension))
                    for v in request.views
                }
                run_stats = ExecutionStats()
                sql_log: list[str] = []
                for query in ranged:
                    if len(sql_log) < _MAX_RECORDED_SQL:
                        try:
                            sql_log.append(generate_sql(query))
                        except QueryError as exc:
                            sql_log.append(f"-- unrenderable query: {exc}")
                queries = list(plan.queries)
                request_outcomes: list[tuple[QueryResult, ExecutionStats]] = []
                for position, owner in request_slots:
                    result, executed_stats = outcomes[position]
                    if owner:
                        request_outcomes.append((result, executed_stats))
                    else:
                        request_outcomes.append(
                            (result, ExecutionStats(coalesced_queries=1))
                        )
                for i in range(0, len(queries), batch_size):
                    batch_costs: list[float] = []
                    for planned, (result, query_stats) in zip(
                        queries[i : i + batch_size],
                        request_outcomes[i : i + batch_size],
                    ):
                        batch_costs.append(self.cost_model.query_seconds(query_stats))
                        run_stats.merge(query_stats)
                        self._route_result(
                            planned, result, states, request.reference_mode
                        )
                    run_stats.batch_costs.append(batch_costs)
                if optimizer is not None:
                    optimizer.observe_phase(
                        plan, [result for result, _ in request_outcomes]
                    )
                pruner_obj = make_pruner("none")
                pruner_obj.initialize(
                    [v.key for v in request.views], request.k, 1
                )
                active = {v.key: v for v in request.views}
                selected, utilities, distributions = self._finalize(
                    states, active, pruner_obj, request.k
                )
                run_stats.wall_seconds = time.perf_counter() - started
                runs.append(
                    EngineRun(
                        strategy="sharing",
                        pruner_name=pruner_obj.name,
                        k=request.k,
                        selected=selected,
                        utilities=utilities,
                        distributions=distributions,
                        stats=run_stats,
                        modeled_latency=self.cost_model.latency_seconds(run_stats),
                        wall_seconds=run_stats.wall_seconds,
                        phases_executed=1,
                        active_per_phase=[len(request.views)],
                        sql=sql_log,
                        parallelism=parallelism,
                        n_workers=dispatcher.n_workers,
                        backend=self.backend.name,
                        shared_scan=config.shared_scan,
                        result_cache=cache is not None,
                        cache_hits=run_stats.cache_hits,
                        cache_misses=(
                            run_stats.queries_issued if cache is not None else 0
                        ),
                        cache_bytes_saved=run_stats.cache_bytes_saved,
                        optimizer_decisions=(
                            optimizer.decisions() if optimizer is not None else {}
                        ),
                    )
                )
        return runs

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _count_executed(self, stats: ExecutionStats) -> None:
        """Fold one execution's physical work into the lifetime totals."""
        self.executed_totals["queries_executed"] += stats.queries_issued
        self.executed_totals["rows_scanned"] += stats.rows_scanned
        self.executed_totals["bytes_scanned"] += (
            stats.bytes_scanned_miss + stats.bytes_scanned_hit
        )

    def _make_pruner(self, name: str) -> Pruner:
        if name.lower() == "ci":
            return make_pruner("ci", delta=self.config.ci_delta)
        if name.lower() == "random":
            return make_pruner("random", seed=self.config.seed)
        return make_pruner(name)

    def _strategy_config(self, strategy: Strategy) -> EngineConfig:
        """Per-strategy engine knobs, derived from the base config."""
        if strategy == "no_opt":
            return self.config.with_(
                max_aggregates_per_query=1,
                max_group_bys_per_query=1,
                use_binpacking=False,
                combine_target_reference=False,
                n_parallel_queries=1,
                shared_scan=False,
            )
        if strategy in ("sharing", "comb", "comb_early"):
            return self.config
        raise RecommendationError(f"unknown strategy {strategy!r}")

    def _execute_plan(
        self,
        plan: SharingPlan,
        row_range: tuple[int, int],
        config: EngineConfig,
        states: dict[ViewKey, ViewState],
        run_stats: ExecutionStats,
        sql_log: list[str],
        reference_mode: ReferenceMode,
        dispatcher: ParallelDispatcher,
        cache: ViewResultCache | None = None,
        cache_prefix: str | None = None,
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """Run a phase's queries in parallel batches and route the results.

        Returns the per-query outcomes in plan order so the workload
        optimizer can fold measured statistics back into its tuning.

        Each batch is a barrier: the dispatcher returns per-query results in
        submission order, and stats merging plus per-view routing happen on
        this thread in that same order — a parallel run therefore performs
        the exact floating-point accumulation sequence of a serial one.

        With ``config.shared_scan`` the **whole phase** is one dispatcher
        batch, so the backend's shared-scan path does exactly one pass over
        the phase's row range.  The cost model still sees concurrency groups
        of ``n_parallel_queries`` — the pool's actual width — so the modeled
        parallel structure is unchanged; only the per-query work (shared
        pages charged once, to the first query) gets cheaper.

        With ``cache`` the dispatcher probes the view-result cache first:
        hits never reach the backend (they are excluded before shared-scan
        batching), misses execute and are memoized.  Hit outcomes carry the
        memoized result with zeroed work counters, so routing order — and
        therefore every downstream floating-point accumulation — is
        unchanged from an uncached run.
        """
        start, stop = row_range
        batch_size = max(config.n_parallel_queries, 1)
        queries = list(plan.queries)
        ranged = [planned.query.with_range(start, stop) for planned in queries]
        keys = (
            [f"{cache_prefix}|{query_fingerprint(query)}" for query in ranged]
            if cache is not None
            else None
        )
        for query in ranged:
            if len(sql_log) < _MAX_RECORDED_SQL:
                # The log is introspection only: a query the generator
                # cannot print (e.g. a non-finite literal in a
                # predicate) must not abort a backend that never ships
                # SQL text.
                try:
                    sql_log.append(generate_sql(query))
                except QueryError as exc:
                    sql_log.append(f"-- unrenderable query: {exc}")
        if config.shared_scan:
            outcomes = dispatcher.run_batch(ranged, cache, keys)
        else:
            outcomes = []
            for i in range(0, len(ranged), batch_size):
                outcomes.extend(
                    dispatcher.run_batch(
                        ranged[i : i + batch_size],
                        cache,
                        keys[i : i + batch_size] if keys is not None else None,
                    )
                )
        for i in range(0, len(queries), batch_size):
            batch_costs: list[float] = []
            for planned, (result, query_stats) in zip(
                queries[i : i + batch_size], outcomes[i : i + batch_size]
            ):
                batch_costs.append(self.cost_model.query_seconds(query_stats))
                run_stats.merge(query_stats)
                self._route_result(planned, result, states, reference_mode)
            run_stats.batch_costs.append(batch_costs)
        return outcomes

    def _route_result(
        self,
        planned: PlannedQuery,
        result: QueryResult,
        states: dict[ViewKey, ViewState],
        reference_mode: ReferenceMode,
    ) -> None:
        """Feed one query result into every view it serves."""
        counts = np.asarray(result.values["__group_count__"])
        if planned.flag_alias is not None:
            flags = np.asarray(result.groups[planned.flag_alias]).astype(np.int64)
            if planned.flag_kind == "two_bit":
                target_mask = flags >= 2
                reference_mask = (flags % 2) == 1
            else:
                target_mask = flags == 1
                reference_mask = (
                    np.ones_like(target_mask)
                    if reference_mode == "all"
                    else flags == 0
                )
        else:
            target_mask = reference_mask = None

        for route in planned.routes:
            state = states.get(route.view.key)
            if state is None:
                continue
            keys = np.asarray(result.groups[route.dim_column])
            agg = np.asarray(result.values[route.agg_alias])
            if route.side == "target":
                state.update_target(keys, agg, counts)
            elif route.side == "reference":
                state.update_reference(keys, agg, counts)
            else:
                assert target_mask is not None and reference_mask is not None
                state.update_target(
                    keys[target_mask], agg[target_mask], counts[target_mask]
                )
                state.update_reference(
                    keys[reference_mask], agg[reference_mask], counts[reference_mask]
                )

    @staticmethod
    def _top_k_identified(
        pruner: Pruner,
        active: dict[ViewKey, AggregateView],
        k: int,
        stable_phases: int,
        config: EngineConfig,
    ) -> bool:
        """Early-return condition (COMB_EARLY): top-k already determined.

        Any of: the pruner formally certifies a top-k set (CI interval
        separation, or k MAB accepts); only k candidates remain active; or
        the estimate-ranked top-k has been stable for
        ``early_stability_phases`` consecutive boundaries.
        """
        if pruner.top_k_set() is not None:
            return True
        if len(active) <= k:
            return True
        return stable_phases >= max(config.early_stability_phases, 1)

    def _finalize(
        self,
        states: dict[ViewKey, ViewState],
        active: dict[ViewKey, AggregateView],
        pruner: Pruner,
        k: int,
    ) -> tuple[list[ViewKey], dict[ViewKey, float], dict[ViewKey, ViewDistributions]]:
        candidates = set(active) | set(pruner.accepted)
        utilities: dict[ViewKey, float] = {}
        distributions: dict[ViewKey, ViewDistributions] = {}
        for key in candidates:
            value, dists = states[key].utility(self.metric)
            utilities[key] = value
            distributions[key] = dists
        if pruner.name == "random":
            selected = sorted(
                pruner.accepted, key=lambda key: -utilities.get(key, 0.0)
            )[:k]
        else:
            selected = [
                key
                for key, _ in sorted(utilities.items(), key=lambda kv: -kv[1])[:k]
            ]
        return selected, utilities, distributions
