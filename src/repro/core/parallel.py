"""Real parallel batch execution (paper §4.1 "Parallel Query Execution").

The paper finds that issuing view queries concurrently — up to roughly the
number of cores — is one of the two biggest levers on latency.  The cost
model has always *modeled* that effect (:meth:`CostModelConfig.
effective_parallelism`); this module makes it real: a
:class:`ParallelDispatcher` runs each phase's batch of planned queries on a
thread pool.  Dispatch is backend-agnostic — anything satisfying the
:class:`~repro.db.backends.Backend` execute contract works, including a bare
:class:`~repro.db.executor.QueryExecutor`.  On the native backend the hot
paths (``np.unique``, ``np.argsort``, fancy indexing, ``np.add.at``)
release the GIL; the sqlite backend opens one connection per worker thread,
so both deliver genuine concurrency.

Determinism is a hard requirement: a run with any worker count must produce
byte-identical ``selected`` views and utilities within 1e-9 of a serial run.
The dispatcher guarantees this by construction —

* each backend ``execute`` call is stateless-per-call and computes its
  result independently of every other in-flight query (sqlite workers use
  per-thread connections to one read-only shared-cache database);
* results are gathered **in submission order** at a batch barrier, so the
  engine routes per-view updates and merges per-query
  :class:`~repro.config.ExecutionStats` in exactly the serial order, keeping
  every floating-point accumulation sequence identical;
* the native backend's shared :class:`~repro.db.buffer.BufferPool` is
  internally locked, so hit/miss bookkeeping stays consistent (totals remain
  exact; the hit/miss *split* may differ from a serial run once eviction
  kicks in, which is faithful to a real buffer pool under concurrency).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from types import TracebackType
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from repro.config import ExecutionStats
from repro.db.query import AggregateQuery, QueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ViewResultCache


class ExecutesQueries(Protocol):
    """Structural type the dispatcher drives: one execute() per query.

    Executors may additionally expose
    ``execute_batch(queries, fanout=None)`` (the
    :class:`~repro.db.backends.Backend` batch contract); a dispatcher
    constructed with ``use_batch=True`` routes whole batches through it so
    a shared-scan backend can serve the batch from one pass.
    """

    def execute(
        self, query: AggregateQuery
    ) -> tuple[QueryResult, ExecutionStats]: ...


class ParallelDispatcher:
    """Runs batches of logical queries concurrently on a thread pool.

    One dispatcher serves one engine run.  ``n_workers <= 1`` degrades to
    inline serial execution with no pool at all, so the serial path stays
    allocation-free.  Use as a context manager (or call :meth:`close`) to
    release the worker threads.

    With ``use_batch=True`` the whole batch is routed to the executor's
    ``execute_batch`` in one call: the backend does its shared work (the
    native backend's single scan) on the calling thread and fans the
    per-query remainder back out through the dispatcher's pool via the
    ``fanout`` callable.  Submission-order gathering — the determinism
    barrier — is preserved on both paths.
    """

    def __init__(
        self,
        executor: ExecutesQueries,
        n_workers: int,
        use_batch: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.executor = executor
        self.n_workers = n_workers
        self.use_batch = use_batch
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ParallelDispatcher":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="seedb-query"
            )
        return self._pool

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run_batch(
        self,
        queries: Sequence[AggregateQuery],
        cache: "ViewResultCache | None" = None,
        cache_keys: Sequence[str] | None = None,
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """Execute ``queries`` concurrently; results in submission order.

        The returned list is index-aligned with ``queries`` regardless of
        completion order — the deterministic barrier the engine relies on.
        The first worker exception (if any) propagates in submission order.

        With ``cache`` (and per-query ``cache_keys``, index-aligned), every
        query whose key hits the :class:`~repro.core.cache.ViewResultCache`
        is **excluded from dispatch before shared-scan batching**: only the
        misses reach the backend (so a shared scan reads just the columns
        the misses need), their results are inserted into the cache, and
        hits are spliced back in at their original positions.  A hit's
        outcome carries the memoized :class:`QueryResult` and a fresh stats
        record whose only nonzero counters are ``cache_hits=1`` and
        ``cache_bytes_saved`` — hits cost nothing in the cost model.
        """
        if cache is not None and cache_keys is not None:
            return self._run_batch_cached(queries, cache, cache_keys)
        return self._run_batch_uncached(queries)

    def _run_batch_cached(
        self,
        queries: Sequence[AggregateQuery],
        cache: "ViewResultCache",
        cache_keys: Sequence[str],
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """Serve hits from ``cache``; dispatch and memoize only the misses."""
        if len(cache_keys) != len(queries):
            raise ValueError(
                f"cache_keys length {len(cache_keys)} != batch size {len(queries)}"
            )
        outcomes: list[tuple[QueryResult, ExecutionStats] | None] = [None] * len(queries)
        miss_indices: list[int] = []
        miss_queries: list[AggregateQuery] = []
        for index, (query, key) in enumerate(zip(queries, cache_keys)):
            entry = cache.get(key)
            if entry is not None:
                outcomes[index] = (
                    entry.result,
                    ExecutionStats(
                        cache_hits=1, cache_bytes_saved=entry.bytes_saved()
                    ),
                )
            else:
                miss_indices.append(index)
                miss_queries.append(query)
        if miss_queries:
            executed = self._run_batch_uncached(miss_queries)
            for index, outcome in zip(miss_indices, executed):
                result, stats = outcome
                entry = cache.put(cache_keys[index], result, stats)
                # Route the frozen (read-only) arrays so a first run and a
                # warm rerun hand consumers the exact same objects.
                outcomes[index] = (entry.result, stats)
        return outcomes  # type: ignore[return-value]

    def _run_batch_uncached(
        self, queries: Sequence[AggregateQuery]
    ) -> list[tuple[QueryResult, ExecutionStats]]:
        """The pre-cache dispatch path: batch, pool, or inline serial."""
        if self.use_batch:
            execute_batch = getattr(self.executor, "execute_batch", None)
            if execute_batch is not None:
                fanout = (
                    self._fanout
                    if self.n_workers > 1 and len(queries) > 1
                    else None
                )
                return execute_batch(list(queries), fanout=fanout)
        if self.n_workers <= 1 or len(queries) <= 1:
            return [self.executor.execute(query) for query in queries]
        pool = self._ensure_pool()
        futures = [pool.submit(self.executor.execute, query) for query in queries]
        return [future.result() for future in futures]

    def _fanout(self, fn: Callable, items: Sequence) -> list:
        """Run ``fn`` over ``items`` on the pool; results in item order."""
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


def make_dispatcher(
    executor: ExecutesQueries,
    mode: str,
    n_workers: int,
    use_batch: bool = False,
    pool_recovery: bool = True,
) -> ParallelDispatcher:
    """Dispatcher factory for the engine's ``parallelism`` mode.

    "modeled" pins one worker — queries run inline on the calling thread
    and parallel speedup exists only inside the cost model, exactly as
    before this subsystem existed.  "process" fans whole queries out to
    worker *processes* that re-open the table's chunk store
    (:mod:`repro.core.procpool`; requires the native backend over an
    on-disk table).  ``use_batch`` (the engine's ``shared_scan`` knob)
    applies in every mode: a modeled run still shares the scan, it just
    runs the per-query grouping inline.  ``pool_recovery`` (the engine's
    knob of the same name, "process" mode only) rebuilds a broken process
    pool once and re-runs the failed batch — bitwise identical — before
    degrading to inline execution.
    """
    if mode == "real":
        return ParallelDispatcher(executor, max(n_workers, 1), use_batch=use_batch)
    if mode == "modeled":
        return ParallelDispatcher(executor, 1, use_batch=use_batch)
    if mode == "process":
        # Deferred import: procpool imports this module.
        from repro.core.procpool import process_dispatcher

        return process_dispatcher(
            executor, n_workers, use_batch=use_batch, pool_recovery=pool_recovery
        )
    raise ValueError(f"unknown parallelism mode {mode!r}")
