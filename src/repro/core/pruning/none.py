"""NO_PRU baseline: process every view on the full data.

Upper bound on latency and accuracy, lower bound on utility distance
(paper §5.4 "Techniques")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.pruning.base import PruneDecision, Pruner
from repro.core.view import ViewKey


@dataclass
class NoPruner(Pruner):
    """Never prunes, never accepts early."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.name = "none"

    def _decide(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int,
        total_rows: int,
    ) -> PruneDecision:
        return PruneDecision()
