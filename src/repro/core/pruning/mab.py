"""Multi-armed-bandit pruning: successive accepts and rejects.

Paper §4.2, adapting Bubeck et al.'s multiple-identifications bandit
algorithm: views are arms, utility is reward, and the goal is the k arms
with the highest mean.  The decision rule at each step over the active
(neither accepted nor rejected) views ranked by running utility mean, with
``k'`` top slots still unfilled:

* ``delta_top``    = (highest mean) − (k'+1-st mean),
* ``delta_bottom`` = (k'-th mean) − (lowest mean).

If ``delta_top`` is larger, the top view is *accepted* into the top-k and
stops participating; otherwise the bottom view is *rejected* (discarded).

Bubeck's algorithm spends one accept/reject per round over ``n - 1``
rounds; SeeDB has only ``n_phases`` phase boundaries for ``n`` views.  We
therefore apply the rule repeatedly at each boundary until the active count
meets a linear elimination schedule (all but k resolved by the final
phase), preserving the decision rule while fitting the phase budget — the
same adaptation the paper's engine needs to discard more than ``n_phases``
views.  The first boundary makes no decisions: means based on a single
estimate are too noisy to accept or reject anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.pruning.base import PruneDecision, Pruner
from repro.core.view import ViewKey


@dataclass
class MultiArmedBanditPruner(Pruner):
    """Successive accepts and rejects over running utility means."""

    #: Skip decisions for this many initial phases (estimate warm-up).
    warmup_phases: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        self.name = "mab"
        self._history: dict[ViewKey, list[float]] = {}
        self._n_views = 0

    def initialize(self, view_keys, k: int, n_phases: int) -> None:  # type: ignore[override]
        super().initialize(view_keys, k, n_phases)
        self._n_views = len(view_keys)
        self._history = {}

    def _target_active(self, phase_index: int) -> int:
        """Linear elimination schedule: k views remain after the last phase."""
        effective_phases = max(self.n_phases - self.warmup_phases, 1)
        progress = min(
            max(phase_index + 1 - self.warmup_phases, 0) / effective_phases, 1.0
        )
        remaining = self._n_views - (self._n_views - self.k) * progress
        return max(self.k, math.ceil(remaining))

    def _decide(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int,
        total_rows: int,
    ) -> PruneDecision:
        for key, value in utilities.items():
            self._history.setdefault(key, []).append(value)
        if phase_index < self.warmup_phases:
            return PruneDecision()

        accepted: set[ViewKey] = set()
        pruned: set[ViewKey] = set()
        active = [key for key in utilities if key not in self.accepted]
        means = {
            key: sum(self._history[key]) / len(self._history[key]) for key in active
        }
        target_active = self._target_active(phase_index)

        while True:
            remaining_k = self.k - len(self.accepted) - len(accepted)
            undecided = [key for key in active if key not in accepted and key not in pruned]
            if remaining_k <= 0 or len(undecided) <= remaining_k:
                break
            if len(undecided) + len(self.accepted) + len(accepted) <= target_active:
                break
            ranked = sorted(undecided, key=lambda key: means[key], reverse=True)
            delta_top = means[ranked[0]] - means[ranked[remaining_k]]
            delta_bottom = means[ranked[remaining_k - 1]] - means[ranked[-1]]
            if delta_top > delta_bottom:
                accepted.add(ranked[0])
            else:
                pruned.add(ranked[-1])
        return PruneDecision(pruned=frozenset(pruned), accepted=frozenset(accepted))
