"""Pruner protocol shared by all pruning strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.view import ViewKey
from repro.exceptions import PruningError


@dataclass(frozen=True)
class PruneDecision:
    """What a pruner decided at the end of one phase."""

    pruned: frozenset[ViewKey] = frozenset()
    accepted: frozenset[ViewKey] = frozenset()

    @property
    def empty(self) -> bool:
        return not self.pruned and not self.accepted


@dataclass
class Pruner(abc.ABC):
    """Observe per-phase utility estimates; decide prunes/accepts.

    Lifecycle: :meth:`initialize` once, then :meth:`observe` after each
    phase with the estimates of all *active* (not yet pruned) views —
    including already-accepted ones, whose estimates keep refining but which
    the pruner must not prune.
    """

    name: str = field(init=False, default="")

    def __post_init__(self) -> None:
        self._k = 0
        self._n_phases = 0
        self._accepted: set[ViewKey] = set()
        self._initialized = False

    def initialize(self, view_keys: Sequence[ViewKey], k: int, n_phases: int) -> None:
        if k <= 0:
            raise PruningError(f"k must be positive, got {k}")
        if n_phases <= 0:
            raise PruningError(f"n_phases must be positive, got {n_phases}")
        self._k = min(k, len(view_keys))
        self._n_phases = n_phases
        self._accepted = set()
        self._initialized = True

    def observe(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int | None = None,
        total_rows: int | None = None,
    ) -> PruneDecision:
        """Feed one phase's estimates; get prune/accept decisions.

        ``rows_seen``/``total_rows`` give the sampling progress CI pruning
        needs for its without-replacement confidence intervals; when omitted
        they default to phase counts.
        """
        if not self._initialized:
            raise PruningError(f"{type(self).__name__}.observe before initialize")
        if phase_index < 0 or phase_index >= self._n_phases:
            raise PruningError(
                f"phase index {phase_index} out of range [0, {self._n_phases})"
            )
        if rows_seen is None:
            rows_seen = phase_index + 1
        if total_rows is None:
            total_rows = self._n_phases
        if rows_seen <= 0 or total_rows < rows_seen:
            raise PruningError(
                f"bad sampling progress: rows_seen={rows_seen}, total={total_rows}"
            )
        decision = self._decide(phase_index, utilities, rows_seen, total_rows)
        self._accepted |= decision.accepted
        return decision

    @abc.abstractmethod
    def _decide(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int,
        total_rows: int,
    ) -> PruneDecision:
        """Strategy-specific decision; see subclass docs."""

    def top_k_set(self) -> frozenset[ViewKey] | None:
        """The identified top-k set, or None if not yet determined.

        Drives COMB_EARLY: once a pruner can certify the top-k, the engine
        may return approximate results immediately (paper §5.1).  The base
        implementation certifies only when k views have been accepted.
        """
        if len(self._accepted) >= self._k:
            return frozenset(self._accepted)
        return None

    @property
    def k(self) -> int:
        return self._k

    @property
    def n_phases(self) -> int:
        return self._n_phases

    @property
    def accepted(self) -> frozenset[ViewKey]:
        return frozenset(self._accepted)


def make_pruner(name: str, **kwargs: object) -> Pruner:
    """Factory for the four strategies: ci / mab / none / random."""
    from repro.core.pruning.ci import ConfidenceIntervalPruner
    from repro.core.pruning.mab import MultiArmedBanditPruner
    from repro.core.pruning.none import NoPruner
    from repro.core.pruning.random_ import RandomPruner

    registry = {
        "ci": ConfidenceIntervalPruner,
        "mab": MultiArmedBanditPruner,
        "none": NoPruner,
        "no_pru": NoPruner,
        "random": RandomPruner,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise PruningError(
            f"unknown pruner {name!r}; available: {sorted(registry)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
