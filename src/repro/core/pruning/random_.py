"""RANDOM baseline: return k arbitrary views.

Lower bound on accuracy and upper bound on utility distance — "for any
technique to be useful, it must do significantly better than RANDOM"
(paper §5.4).  Implemented as a pruner that, at the first phase boundary,
accepts k uniformly random views and discards everything else, so its
latency is roughly one phase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.pruning.base import PruneDecision, Pruner
from repro.core.view import ViewKey


@dataclass
class RandomPruner(Pruner):
    """Pick k views uniformly at random, ignore utilities entirely."""

    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.name = "random"

    def _decide(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int,
        total_rows: int,
    ) -> PruneDecision:
        if self.accepted:
            return PruneDecision()
        rng = random.Random(self.seed)
        keys = sorted(utilities)
        chosen = frozenset(rng.sample(keys, min(self.k, len(keys))))
        return PruneDecision(
            pruned=frozenset(key for key in keys if key not in chosen),
            accepted=chosen,
        )
