"""Pruning-based optimizations (paper §4.2).

At the end of each execution phase the engine feeds every active view's
current utility estimate to a pruner, which may *discard* views (certainly
not top-k) and, for MAB, *accept* views (certainly top-k).  Strategies:

* ``ci`` — worst-case Hoeffding–Serfling confidence intervals,
* ``mab`` — multi-armed-bandit successive accepts and rejects,
* ``none`` — NO_PRU baseline (process everything),
* ``random`` — RANDOM baseline (pick k views blindly).
"""

from repro.core.pruning.base import PruneDecision, Pruner, make_pruner
from repro.core.pruning.ci import ConfidenceIntervalPruner
from repro.core.pruning.mab import MultiArmedBanditPruner
from repro.core.pruning.none import NoPruner
from repro.core.pruning.random_ import RandomPruner

__all__ = [
    "ConfidenceIntervalPruner",
    "MultiArmedBanditPruner",
    "NoPruner",
    "PruneDecision",
    "Pruner",
    "RandomPruner",
    "make_pruner",
]
