"""Confidence-interval pruning via the Hoeffding–Serfling inequality.

Paper §4.2: the engine draws rows without replacement, and after seeing
``m`` of ``N`` rows every view has a running utility estimate.  The
Hoeffding–Serfling inequality for sampling without replacement (Serfling
1974; anytime form by Bardenet & Maillard) bounds how far the running mean
of [0, 1]-valued draws can sit from the true mean, uniformly over ``m``,
with probability ``1 - delta``:

    eps_m = sqrt( (1 - (m-1)/N) * (2 ln ln(m+1) + ln(pi^2 / 3 delta)) / (2m) )

Each view keeps ``mean(estimates so far) ± eps_m``.  The prune rule (the
paper's Figure 4): discard view ``V_i`` as soon as its upper bound falls
below the lower bound of at least ``k`` active views — then ``V_i`` cannot
be in the top-k with high probability.

Crucially ``m`` counts *rows*, not phases: the interval tightens as data is
consumed, which is what lets CI prune aggressively after only a phase or
two on clearly-separated views.  Utilities must be bounded in [0, 1] for
the inequality to hold — true for EMD/Euclidean/JS/MAX_DIFF, heuristic for
KL, exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.pruning.base import PruneDecision, Pruner
from repro.core.view import ViewKey
from repro.exceptions import PruningError


def hoeffding_serfling_epsilon(m: int, n_total: int, delta: float) -> float:
    """Anytime confidence half-width after ``m`` of ``n_total`` draws."""
    if m < 1:
        raise PruningError(f"need at least one draw, got m={m}")
    if not 0.0 < delta < 1.0:
        raise PruningError(f"delta must be in (0,1), got {delta}")
    n = max(n_total, m)
    shrink = 1.0 - (m - 1) / n
    confidence = 2.0 * math.log(math.log(m + 1)) + math.log(math.pi**2 / (3.0 * delta))
    return math.sqrt(max(shrink * confidence, 0.0) / (2.0 * m))


@dataclass
class ConfidenceIntervalPruner(Pruner):
    """The paper's CI scheme: worst-case intervals, aggressive pruning."""

    delta: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        self.name = "ci"
        self._history: dict[ViewKey, list[float]] = {}
        self._last_epsilon = math.inf

    def _decide(
        self,
        phase_index: int,
        utilities: Mapping[ViewKey, float],
        rows_seen: int,
        total_rows: int,
    ) -> PruneDecision:
        for key, value in utilities.items():
            self._history.setdefault(key, []).append(value)

        epsilon = hoeffding_serfling_epsilon(rows_seen, total_rows, self.delta)
        self._last_epsilon = epsilon
        intervals: dict[ViewKey, tuple[float, float]] = {}
        for key in utilities:
            history = self._history[key]
            mean = sum(history) / len(history)
            intervals[key] = (mean - epsilon, mean + epsilon)

        # Prune views whose upper bound is beaten by >= k lower bounds.
        lower_bounds = sorted((lb for lb, _ in intervals.values()), reverse=True)
        if len(lower_bounds) <= self.k:
            return PruneDecision()
        kth_lower = lower_bounds[self.k - 1]
        pruned = set(key for key, (_, ub) in intervals.items() if ub < kth_lower)
        # Never prune below k survivors (possible only with exact ties on
        # the boundary); keep the highest upper bounds.
        max_prunable = len(utilities) - self.k
        if len(pruned) > max_prunable:
            ranked = sorted(pruned, key=lambda key: -intervals[key][1])
            pruned = set(ranked[len(pruned) - max_prunable :])
        return PruneDecision(pruned=frozenset(pruned))

    def top_k_set(self) -> frozenset[ViewKey] | None:
        """Certify the top-k when its lower bounds clear everyone's upper bounds.

        With the current half-width ``eps``, the candidate top-k by running
        mean is certainly the true top-k (whp) when the k-th candidate's
        lower bound is at least the best upper bound among the rest.
        """
        if not self._history or not math.isfinite(self._last_epsilon):
            return None
        means = {
            key: sum(history) / len(history)
            for key, history in self._history.items()
        }
        ranked = sorted(means, key=lambda key: -means[key])
        if len(ranked) <= self.k:
            return frozenset(ranked)
        kth_lower = means[ranked[self.k - 1]] - self._last_epsilon
        best_rest_upper = means[ranked[self.k]] + self._last_epsilon
        if kth_lower >= best_rest_upper:
            return frozenset(ranked[: self.k])
        return None

    @property
    def last_epsilon(self) -> float:
        """Half-width used at the most recent phase (introspection)."""
        return self._last_epsilon

    def interval(self, key: ViewKey) -> tuple[float, float]:
        """Current confidence interval of a view (introspection helper)."""
        history = self._history.get(key)
        if not history:
            raise PruningError(f"no observations for view {key!r}")
        mean = sum(history) / len(history)
        return (mean - self._last_epsilon, mean + self._last_epsilon)
