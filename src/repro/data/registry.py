"""Dataset registry: build any Table-1 dataset by name.

Row counts are scale-controllable via the ``SEEDB_SCALE`` environment
variable or an explicit ``scale=`` argument:

* ``smoke`` — tiny tables for fast CI runs,
* ``small`` — laptop-friendly defaults (AIR scaled to 300K rows),
* ``full``  — the paper's published row counts (AIR = 6M; AIR10 is capped at
  12M rather than 60M because a 60M-row in-memory table exceeds laptop RAM —
  the 10x-scaling *trend* of Figure 5 is preserved by the AIR→AIR10 ratio).

Beyond the built-in surrogates, on-disk chunked datasets (directories
written by :mod:`repro.data.ingest` / :mod:`repro.db.chunks`) can be
registered at runtime with :func:`register_on_disk`; they build as
memory-mapped tables that the engine streams chunk-at-a-time, so they may
exceed RAM.

The inventory report (:func:`table_one_inventory`) regenerates paper
Table 1's rows.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.data import real, synthetic
from repro.db.chunks import ChunkManifest, read_manifest
from repro.db.expressions import Comparison, Expression, eq
from repro.db.table import Table
from repro.exceptions import DatasetError

Scale = str
_VALID_SCALES = ("smoke", "small", "full")


def current_scale(default: Scale = "small") -> Scale:
    """Scale from ``SEEDB_SCALE`` env var, else ``default``."""
    scale = os.environ.get("SEEDB_SCALE", default).lower()
    if scale not in _VALID_SCALES:
        raise DatasetError(
            f"SEEDB_SCALE must be one of {_VALID_SCALES}, got {scale!r}"
        )
    return scale


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: how to build a dataset and how to query it."""

    name: str
    description: str
    builder: Callable[[int, int], Table]  # (n_rows, seed) -> Table
    rows_by_scale: dict[Scale, int]
    split_column: str
    target_value: str
    other_value: str
    #: Row count the paper reports (for the Table 1 inventory).
    paper_rows: int

    def build(self, seed: int = 0, scale: Scale | None = None, n_rows: int | None = None) -> Table:
        rows = n_rows if n_rows is not None else self.rows_by_scale[scale or current_scale()]
        return self.builder(rows, seed)

    def target_predicate(self) -> Expression:
        """The analyst's query Q selecting the target slice D_Q."""
        return eq(self.split_column, self.target_value)

    def complement_predicate(self) -> Comparison:
        """Selects D - D_Q (the paper's complement reference option)."""
        return eq(self.split_column, self.other_value)


def _real_builder(recipe: real.RealRecipe) -> Callable[[int, int], Table]:
    def build(n_rows: int, seed: int) -> Table:
        return real.build_real(recipe, seed=seed, n_rows=n_rows)

    return build


def _syn_builder(n_rows: int, seed: int) -> Table:
    return synthetic.make_syn(n_rows=n_rows, seed=seed)


def _syn_star_builder(distinct: int) -> Callable[[int, int], Table]:
    def build(n_rows: int, seed: int) -> Table:
        return synthetic.make_syn_star(distinct, n_rows=n_rows, seed=seed)

    return build


DATASETS: dict[str, DatasetSpec] = {
    "syn": DatasetSpec(
        name="syn",
        description="Randomly distributed, varying # distinct values",
        builder=_syn_builder,
        rows_by_scale={"smoke": 5_000, "small": 100_000, "full": 1_000_000},
        split_column=synthetic.SPLIT_COLUMN,
        target_value=synthetic.TARGET_VALUE,
        other_value=synthetic.REFERENCE_VALUE,
        paper_rows=1_000_000,
    ),
    "syn_star_10": DatasetSpec(
        name="syn_star_10",
        description="Randomly distributed, 10 distinct values/dim",
        builder=_syn_star_builder(10),
        rows_by_scale={"smoke": 5_000, "small": 100_000, "full": 1_000_000},
        split_column=synthetic.SPLIT_COLUMN,
        target_value=synthetic.TARGET_VALUE,
        other_value=synthetic.REFERENCE_VALUE,
        paper_rows=1_000_000,
    ),
    "syn_star_100": DatasetSpec(
        name="syn_star_100",
        description="Randomly distributed, 100 distinct values/dim",
        builder=_syn_star_builder(100),
        rows_by_scale={"smoke": 5_000, "small": 100_000, "full": 1_000_000},
        split_column=synthetic.SPLIT_COLUMN,
        target_value=synthetic.TARGET_VALUE,
        other_value=synthetic.REFERENCE_VALUE,
        paper_rows=1_000_000,
    ),
    "bank": DatasetSpec(
        name="bank",
        description="Customer loan dataset",
        builder=_real_builder(real.BANK_RECIPE),
        rows_by_scale={"smoke": 4_000, "small": 40_000, "full": 40_000},
        split_column=real.BANK_RECIPE.split_column,
        target_value=real.BANK_RECIPE.target_value,
        other_value=real.BANK_RECIPE.other_value,
        paper_rows=40_000,
    ),
    "diab": DatasetSpec(
        name="diab",
        description="Hospital data about diabetic patients",
        builder=_real_builder(real.DIAB_RECIPE),
        rows_by_scale={"smoke": 5_000, "small": 100_000, "full": 100_000},
        split_column=real.DIAB_RECIPE.split_column,
        target_value=real.DIAB_RECIPE.target_value,
        other_value=real.DIAB_RECIPE.other_value,
        paper_rows=100_000,
    ),
    "air": DatasetSpec(
        name="air",
        description="Airline delays dataset",
        builder=_real_builder(real.AIR_RECIPE),
        rows_by_scale={"smoke": 20_000, "small": 300_000, "full": 6_000_000},
        split_column=real.AIR_RECIPE.split_column,
        target_value=real.AIR_RECIPE.target_value,
        other_value=real.AIR_RECIPE.other_value,
        paper_rows=6_000_000,
    ),
    "air10": DatasetSpec(
        name="air10",
        description="Airline dataset scaled 10X",
        builder=_real_builder(real.AIR_RECIPE),
        rows_by_scale={"smoke": 200_000, "small": 3_000_000, "full": 12_000_000},
        split_column=real.AIR_RECIPE.split_column,
        target_value=real.AIR_RECIPE.target_value,
        other_value=real.AIR_RECIPE.other_value,
        paper_rows=60_000_000,
    ),
    "census": DatasetSpec(
        name="census",
        description="Census data",
        builder=_real_builder(real.CENSUS_RECIPE),
        rows_by_scale={"smoke": 3_000, "small": 21_000, "full": 21_000},
        split_column=real.CENSUS_RECIPE.split_column,
        target_value=real.CENSUS_RECIPE.target_value,
        other_value=real.CENSUS_RECIPE.other_value,
        paper_rows=21_000,
    ),
    "housing": DatasetSpec(
        name="housing",
        description="Housing prices",
        builder=_real_builder(real.HOUSING_RECIPE),
        rows_by_scale={"smoke": 500, "small": 500, "full": 500},
        split_column=real.HOUSING_RECIPE.split_column,
        target_value=real.HOUSING_RECIPE.target_value,
        other_value=real.HOUSING_RECIPE.other_value,
        paper_rows=500,
    ),
    "movies": DatasetSpec(
        name="movies",
        description="Movie sales",
        builder=_real_builder(real.MOVIES_RECIPE),
        rows_by_scale={"smoke": 1_000, "small": 1_000, "full": 1_000},
        split_column=real.MOVIES_RECIPE.split_column,
        target_value=real.MOVIES_RECIPE.target_value,
        other_value=real.MOVIES_RECIPE.other_value,
        paper_rows=1_000,
    ),
}


# --------------------------------------------------------------------------- #
# on-disk chunked datasets (runtime-registered)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OnDiskSpec:
    """Registry entry for an on-disk chunked dataset directory.

    Built by :func:`register_on_disk` from the directory's manifest.
    ``build`` opens the dataset as a memory-mapped table — ``seed``,
    ``scale``, and ``n_rows`` are accepted for interface compatibility with
    :class:`DatasetSpec` but ignored (the data on disk *is* the dataset).
    The split attribute is optional: CSV-ingested datasets without one
    require the caller to supply an explicit target predicate.
    """

    name: str
    description: str
    path: str
    n_rows: int
    chunk_rows: int
    split_column: str | None
    target_value: str | None
    other_value: str | None
    digest: str

    #: Mirrors :class:`DatasetSpec` for inventory/service consumers.
    @property
    def paper_rows(self) -> int:
        return self.n_rows

    @property
    def on_disk(self) -> bool:
        return True

    def build(
        self,
        seed: int = 0,
        scale: Scale | None = None,
        n_rows: int | None = None,
        memory_budget_bytes: int | None = None,
    ) -> Table:
        from repro.db.chunks import open_table

        return open_table(self.path, memory_budget_bytes=memory_budget_bytes)

    def target_predicate(self) -> Expression:
        """The analyst's query Q selecting the target slice D_Q."""
        if self.split_column is None or self.target_value is None:
            raise DatasetError(
                f"on-disk dataset {self.name!r} has no split attribute; "
                "supply an explicit target predicate"
            )
        return eq(self.split_column, self.target_value)

    def complement_predicate(self) -> Comparison:
        """Selects D - D_Q (the paper's complement reference option)."""
        if self.split_column is None or self.other_value is None:
            raise DatasetError(
                f"on-disk dataset {self.name!r} has no split attribute; "
                "supply an explicit reference predicate"
            )
        return eq(self.split_column, self.other_value)


_ON_DISK: dict[str, OnDiskSpec] = {}
_ON_DISK_LOCK = threading.Lock()


def register_on_disk(path: str | Path, name: str | None = None) -> OnDiskSpec:
    """Register a chunk-store directory as a buildable dataset.

    The directory's ``manifest.json`` supplies the dataset name (unless
    overridden), row count, chunking, and optional split attribute.
    Re-registering the same name with the same manifest digest is a no-op,
    and the same *directory* with a different digest updates the entry in
    place (the store was appended to — see
    :func:`repro.db.chunks.append_rows`); a different directory under the
    same name (or a clash with a built-in name) is an error.  Returns the
    registered spec.
    """
    manifest: ChunkManifest = read_manifest(path)
    key = (name or manifest.name).lower()
    if key in DATASETS:
        raise DatasetError(
            f"cannot register on-disk dataset {key!r}: name is taken by a "
            "built-in dataset"
        )
    entry = OnDiskSpec(
        name=key,
        description=manifest.description or f"on-disk dataset at {path}",
        path=str(path),
        n_rows=manifest.n_rows,
        chunk_rows=manifest.chunk_rows,
        split_column=manifest.split_column,
        target_value=manifest.target_value,
        other_value=manifest.other_value,
        digest=manifest.digest,
    )
    with _ON_DISK_LOCK:
        existing = _ON_DISK.get(key)
        if (
            existing is not None
            and existing.digest != entry.digest
            and Path(existing.path).resolve() != Path(path).resolve()
        ):
            raise DatasetError(
                f"on-disk dataset {key!r} is already registered with "
                "different contents"
            )
        _ON_DISK[key] = entry
    return entry


def refresh_on_disk(name: str) -> OnDiskSpec:
    """Re-read a registered on-disk dataset's manifest after an append.

    Rebuilds the registry entry from the directory's current
    ``manifest.json`` (new row count, new digest) without changing which
    directory the name points at.  Returns the updated spec; raises
    :class:`DatasetError` if ``name`` has no on-disk registration.
    """
    key = name.lower()
    with _ON_DISK_LOCK:
        existing = _ON_DISK.get(key)
    if existing is None:
        raise DatasetError(f"no on-disk dataset {name!r} is registered")
    return register_on_disk(existing.path, name=key)


def unregister_on_disk(name: str) -> bool:
    """Remove an on-disk registration; returns whether it existed."""
    with _ON_DISK_LOCK:
        return _ON_DISK.pop(name.lower(), None) is not None


def on_disk_datasets() -> dict[str, OnDiskSpec]:
    """Snapshot of the currently registered on-disk datasets."""
    with _ON_DISK_LOCK:
        return dict(_ON_DISK)


def available_datasets() -> list[str]:
    """Every buildable dataset name: built-ins plus on-disk registrations."""
    with _ON_DISK_LOCK:
        return sorted(set(DATASETS) | set(_ON_DISK))


def spec(name: str) -> DatasetSpec | OnDiskSpec:
    built_in = DATASETS.get(name.lower())
    if built_in is not None:
        return built_in
    with _ON_DISK_LOCK:
        on_disk = _ON_DISK.get(name.lower())
    if on_disk is not None:
        return on_disk
    raise DatasetError(
        f"unknown dataset {name!r}; available: {available_datasets()}"
    )


def build(name: str, seed: int = 0, scale: Scale | None = None, n_rows: int | None = None) -> Table:
    """Build a registered dataset by name."""
    return spec(name).build(seed=seed, scale=scale, n_rows=n_rows)


def build_info(
    name: str, seed: int = 0, scale: Scale | None = None, n_rows: int | None = None
) -> tuple[Table, "DatasetSpec | OnDiskSpec"]:
    """Build a dataset and return it together with its registry spec."""
    dataset_spec = spec(name)
    return dataset_spec.build(seed=seed, scale=scale, n_rows=n_rows), dataset_spec


def table_one_inventory(scale: Scale | None = None, seed: int = 0) -> list[dict[str, object]]:
    """Regenerate the paper's Table 1 rows for the built datasets."""
    from repro.db.catalog import TableMeta

    rows = []
    for name, dataset_spec in DATASETS.items():
        table = dataset_spec.build(seed=seed, scale=scale)
        meta = TableMeta.of(table)
        rows.append(
            {
                "name": name.upper(),
                "description": dataset_spec.description,
                "rows": meta.n_rows,
                "paper_rows": dataset_spec.paper_rows,
                "|A|": meta.n_dimensions,
                "|M|": meta.n_measures,
                "views": meta.n_views(),
                "size_mb": round(meta.size_mb, 2),
            }
        )
    return rows
