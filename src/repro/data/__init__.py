"""Dataset substrate: seeded surrogates for every dataset in Table 1.

The paper evaluates on synthetic tables (SYN, SYN*-10, SYN*-100) and real
datasets (BANK, DIAB, AIR, AIR10, CENSUS, HOUSING, MOVIES).  The real files
are not redistributable, so this package generates surrogates with the same
shape — row counts, dimension/measure counts, and therefore view counts —
and *planted deviations* so that a controlled subset of views genuinely
deviates between target and reference slices (DESIGN.md §2 documents the
substitution).

Use :func:`repro.data.registry.build` (re-exported here) to construct any
dataset by name.
"""

from repro.data.ingest import ingest_csv, materialize_dataset
from repro.data.planting import PlantedView
from repro.data.registry import (
    DATASETS,
    DatasetSpec,
    OnDiskSpec,
    available_datasets,
    build,
    build_info,
    on_disk_datasets,
    register_on_disk,
    table_one_inventory,
    unregister_on_disk,
)
from repro.data.synthetic import SyntheticConfig, make_synthetic, make_syn, make_syn_star

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "OnDiskSpec",
    "PlantedView",
    "SyntheticConfig",
    "available_datasets",
    "build",
    "build_info",
    "ingest_csv",
    "materialize_dataset",
    "make_syn",
    "make_syn_star",
    "make_synthetic",
    "on_disk_datasets",
    "register_on_disk",
    "table_one_inventory",
    "unregister_on_disk",
]
