"""Synthetic dataset generators: SYN and SYN* (paper Table 1).

* ``SYN`` — 1M rows (scale-controllable), 50 dimensions with distinct counts
  log-uniform in [1, 1000], 20 measures → 1000 views.  Used by the sharing
  and baseline experiments (Figures 6, 7, 8b, 9).
* ``SYN*-10`` / ``SYN*-100`` — 20 dimensions with exactly 10 (resp. 100)
  distinct values each and a single measure.  Used by the group-by
  memory-budget experiment (Figure 8a), where a query grouping by ``p``
  attributes needs memory ~ ``min(10^p, num_rows)``.

Every synthetic table also carries a ``part`` column (role OTHER, so it is
not a view dimension) splitting rows into target (``'t'``) and reference
(``'r'``) slices, plus optional planted deviations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.distributions import categorical_column, measure_column
from repro.data.planting import PlantedView, apply_planting
from repro.db.table import Table
from repro.db.types import ColumnRole
from repro.exceptions import DatasetError

#: Name of the target/reference split column on generated datasets.
SPLIT_COLUMN = "part"
TARGET_VALUE = "t"
REFERENCE_VALUE = "r"


@dataclass(frozen=True)
class SyntheticConfig:
    """Recipe for one synthetic table."""

    name: str
    n_rows: int
    n_dimensions: int
    n_measures: int
    #: Either one distinct count for all dimensions, or (low, high) for a
    #: log-uniform draw per dimension (the paper's "varying # distinct").
    distinct_values: int | tuple[int, int] = (2, 1000)
    dimension_skew: float = 0.5
    target_fraction: float = 0.5
    plantings: tuple[PlantedView, ...] = ()
    measure_kind: str = "gamma"
    seed: int = 0
    extra_roles: dict[str, ColumnRole] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_dimensions <= 0 or self.n_measures <= 0:
            raise DatasetError(f"non-positive sizes in config {self.name!r}")
        if not 0.0 < self.target_fraction < 1.0:
            raise DatasetError("target_fraction must be in (0, 1)")


def dimension_name(i: int) -> str:
    return f"d{i:02d}"


def measure_name(i: int) -> str:
    return f"m{i:02d}"


def make_synthetic(config: SyntheticConfig) -> Table:
    """Generate a table from ``config`` (deterministic given the seed)."""
    rng = np.random.default_rng(config.seed)
    n = config.n_rows

    distinct_counts = _distinct_counts(config, rng)
    data: dict[str, np.ndarray] = {}
    roles: dict[str, ColumnRole] = {}
    dim_codes: dict[str, np.ndarray] = {}

    part = np.where(
        rng.random(n) < config.target_fraction, TARGET_VALUE, REFERENCE_VALUE
    )
    data[SPLIT_COLUMN] = part
    roles[SPLIT_COLUMN] = ColumnRole.OTHER
    in_target = part == TARGET_VALUE

    for i in range(config.n_dimensions):
        name = dimension_name(i)
        column = categorical_column(
            n, distinct_counts[i], rng, prefix=f"{name}_", skew=config.dimension_skew
        )
        data[name] = column
        roles[name] = ColumnRole.DIMENSION

    plantings_by_measure: dict[str, list[PlantedView]] = {}
    for planting in config.plantings:
        plantings_by_measure.setdefault(planting.measure, []).append(planting)

    for j in range(config.n_measures):
        name = measure_name(j)
        values = measure_column(n, rng, kind=config.measure_kind)
        for planting in plantings_by_measure.get(name, ()):
            if planting.dimension not in data:
                raise DatasetError(
                    f"planting references unknown dimension {planting.dimension!r}"
                )
            codes = _codes_for(planting.dimension, data, dim_codes)
            n_groups = int(codes.max()) + 1 if len(codes) else 0
            values = apply_planting(
                values, codes, n_groups, in_target, planting.strength, rng
            )
        data[name] = values
        roles[name] = ColumnRole.MEASURE

    roles.update(config.extra_roles)
    return Table(config.name, data, roles=roles)


def _distinct_counts(config: SyntheticConfig, rng: np.random.Generator) -> list[int]:
    if isinstance(config.distinct_values, int):
        return [config.distinct_values] * config.n_dimensions
    low, high = config.distinct_values
    if low < 1 or high < low:
        raise DatasetError(f"bad distinct range {config.distinct_values!r}")
    log_draws = rng.uniform(np.log(low), np.log(high), size=config.n_dimensions)
    return [max(int(round(np.exp(x))), 1) for x in log_draws]


def _codes_for(
    dimension: str, data: dict[str, np.ndarray], cache: dict[str, np.ndarray]
) -> np.ndarray:
    if dimension not in cache:
        _, codes = np.unique(data[dimension], return_inverse=True)
        cache[dimension] = codes
    return cache[dimension]


def make_syn(
    n_rows: int = 1_000_000,
    n_dimensions: int = 50,
    n_measures: int = 20,
    seed: int = 0,
) -> Table:
    """The paper's SYN table: 1000 views, varying distinct counts."""
    return make_synthetic(
        SyntheticConfig(
            name="syn",
            n_rows=n_rows,
            n_dimensions=n_dimensions,
            n_measures=n_measures,
            distinct_values=(2, 1000),
            plantings=_default_plantings(n_dimensions, n_measures),
            seed=seed,
        )
    )


def make_syn_star(
    distinct: int,
    n_rows: int = 1_000_000,
    n_dimensions: int = 20,
    seed: int = 0,
) -> Table:
    """SYN*-10 / SYN*-100: fixed distinct count per dimension, one measure."""
    if distinct not in (10, 100):
        raise DatasetError(f"paper defines SYN* for 10 or 100 distinct values, got {distinct}")
    return make_synthetic(
        SyntheticConfig(
            name=f"syn_star_{distinct}",
            n_rows=n_rows,
            n_dimensions=n_dimensions,
            n_measures=1,
            distinct_values=distinct,
            dimension_skew=0.0,
            seed=seed,
        )
    )


def _default_plantings(n_dimensions: int, n_measures: int) -> tuple[PlantedView, ...]:
    """A light planting so SYN has a meaningful (non-degenerate) top-k."""
    count = max(2, min(n_dimensions, n_measures, 8))
    strengths = np.linspace(0.7, 0.2, count)
    return tuple(
        PlantedView(dimension_name(i), measure_name(i), float(s))
        for i, s in enumerate(strengths)
    )
