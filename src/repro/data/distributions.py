"""Seeded value generators for dimensions and measures.

Dimensions are categorical draws with optionally skewed (Zipf-like) group
weights — real datasets rarely have uniform group sizes, and skew is what
makes group-by memory estimates interesting.  Measures are nonnegative
continuous draws (gamma/lognormal/uniform) so normalization into probability
distributions (paper §2) never clips.
"""

from __future__ import annotations

import numpy as np


def category_labels(prefix: str, n: int) -> np.ndarray:
    """``n`` deterministic category labels, e.g. ``g00 .. g09``."""
    width = max(2, len(str(n - 1)))
    return np.asarray([f"{prefix}{i:0{width}d}" for i in range(n)])


def zipf_weights(n: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Normalized Zipf-like group weights with a random permutation.

    ``skew = 0`` is uniform; larger values concentrate mass on few groups.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(n)
    weights = weights / weights.sum()
    return weights[rng.permutation(n)]


def categorical_column(
    n_rows: int,
    n_distinct: int,
    rng: np.random.Generator,
    prefix: str = "v",
    skew: float = 0.5,
) -> np.ndarray:
    """A string dimension column with ``n_distinct`` values."""
    labels = category_labels(prefix, n_distinct)
    weights = zipf_weights(n_distinct, skew, rng)
    return rng.choice(labels, size=n_rows, p=weights)


def measure_column(
    n_rows: int,
    rng: np.random.Generator,
    kind: str = "gamma",
    scale: float = 100.0,
) -> np.ndarray:
    """A nonnegative float measure column.

    ``kind``: "gamma" (right-skewed, income-like), "lognormal" (heavy tail,
    sales-like), or "uniform".
    """
    if kind == "gamma":
        return rng.gamma(shape=2.0, scale=scale / 2.0, size=n_rows)
    if kind == "lognormal":
        return rng.lognormal(mean=np.log(max(scale, 1e-9)), sigma=0.5, size=n_rows)
    if kind == "uniform":
        return rng.uniform(0.0, 2.0 * scale, size=n_rows)
    raise ValueError(f"unknown measure kind {kind!r}")
