"""Surrogates for the paper's real datasets (Table 1).

Each builder reproduces the *shape* of the original: row count, number of
dimension attributes |A|, number of measures |M| (hence the view count
|A| x |M|), plausible per-dimension cardinalities, and a split attribute
defining the analyst's target query.  Planted deviations (strength ladders)
shape the true-utility distribution across views the way the paper's
Figure 10 shows — e.g. BANK has two standout views then a near-tie cluster,
DIAB has ten closely-clustered top views.

The split attribute has role OTHER: like the paper's census task (compare
unmarried vs. married adults), the attribute you condition on is not itself
a view dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.distributions import categorical_column, measure_column
from repro.data.planting import PlantedView, apply_plantings
from repro.db.table import Table
from repro.db.types import ColumnRole
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class RealRecipe:
    """Schema recipe for one real-dataset surrogate."""

    name: str
    n_rows: int
    #: (column name, distinct values, skew)
    dims: tuple[tuple[str, int, float], ...]
    #: (column name, distribution kind, scale)
    measures: tuple[tuple[str, str, float], ...]
    split_column: str
    target_value: str
    other_value: str
    target_fraction: float
    plantings: tuple[PlantedView, ...] = field(default=())
    #: Maximum strength of the random low-grade deviation every non-planted
    #: (dimension, measure) pair receives.  Real datasets never have views
    #: with *zero* deviation; this background produces the continuous
    #: utility spectrum of the paper's Figure 10 (and gives CI pruning a
    #: boundary it can actually separate).
    background_deviation: float = 0.10

    def view_count(self) -> int:
        return len(self.dims) * len(self.measures)


def build_real(recipe: RealRecipe, seed: int = 0, n_rows: int | None = None) -> Table:
    """Materialize a recipe as a :class:`Table` (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else recipe.n_rows
    if n <= 0:
        raise DatasetError(f"n_rows must be positive, got {n}")

    data: dict[str, np.ndarray] = {}
    roles: dict[str, ColumnRole] = {}

    split = np.where(
        rng.random(n) < recipe.target_fraction, recipe.target_value, recipe.other_value
    )
    data[recipe.split_column] = split
    roles[recipe.split_column] = ColumnRole.OTHER
    in_target = split == recipe.target_value

    codes_cache: dict[str, np.ndarray] = {}
    group_counts: dict[str, int] = {}
    for dim_name, distinct, skew in recipe.dims:
        column = categorical_column(n, distinct, rng, prefix=f"{dim_name}_", skew=skew)
        data[dim_name] = column
        roles[dim_name] = ColumnRole.DIMENSION
        _, codes = np.unique(column, return_inverse=True)
        codes_cache[dim_name] = codes
        group_counts[dim_name] = int(codes.max()) + 1 if n else 0

    by_measure: dict[str, list[PlantedView]] = {}
    for planting in recipe.plantings:
        if planting.dimension not in codes_cache:
            raise DatasetError(
                f"{recipe.name}: planting references unknown dimension "
                f"{planting.dimension!r}"
            )
        by_measure.setdefault(planting.measure, []).append(planting)

    for measure_name, kind, scale in recipe.measures:
        values = measure_column(n, rng, kind=kind, scale=scale)
        explicit = by_measure.get(measure_name, ())
        planted_dims = {p.dimension for p in explicit}
        plantings = [
            (
                codes_cache[p.dimension],
                group_counts[p.dimension],
                p.strength,
            )
            for p in explicit
        ]
        # Background: every other (dimension, measure) pair gets a small
        # random deviation so true utilities form a continuous spectrum.
        for dim_name, _, _ in recipe.dims:
            if dim_name in planted_dims:
                continue
            strength = float(rng.uniform(0.0, recipe.background_deviation))
            plantings.append(
                (codes_cache[dim_name], group_counts[dim_name], strength)
            )
        values = apply_plantings(values, plantings, in_target, rng)
        data[measure_name] = values
        roles[measure_name] = ColumnRole.MEASURE

    return Table(recipe.name, data, roles=roles)


# --------------------------------------------------------------------------- #
# recipes — shapes from Table 1 of the paper
# --------------------------------------------------------------------------- #

BANK_RECIPE = RealRecipe(
    name="bank",
    n_rows=40_000,
    dims=(
        ("job", 12, 0.6), ("marital", 3, 0.3), ("education", 8, 0.5),
        ("default", 2, 0.2), ("housing", 2, 0.1), ("loan", 2, 0.3),
        ("contact", 3, 0.4), ("month", 12, 0.4), ("poutcome", 4, 0.6),
        ("day_of_week", 7, 0.0), ("region", 10, 0.5),
    ),
    measures=(
        ("age", "uniform", 45.0), ("balance", "lognormal", 1500.0),
        ("duration", "gamma", 260.0), ("campaign", "gamma", 3.0),
        ("pdays", "gamma", 40.0), ("previous", "gamma", 1.0),
        ("emp_var_rate", "uniform", 2.0),
    ),
    split_column="subscribed",
    target_value="yes",
    other_value="no",
    target_fraction=0.3,
    # Figure 10a shape: #1 and #2 well separated, #3..#9 nearly tied,
    # #10 separated again, the rest a low tail.
    plantings=(
        PlantedView("job", "balance", 0.85),
        PlantedView("month", "duration", 0.70),
        PlantedView("education", "balance", 0.47),
        PlantedView("poutcome", "duration", 0.465),
        PlantedView("contact", "campaign", 0.46),
        PlantedView("region", "pdays", 0.455),
        PlantedView("job", "duration", 0.45),
        PlantedView("month", "campaign", 0.445),
        PlantedView("education", "age", 0.44),
        PlantedView("poutcome", "previous", 0.36),
        PlantedView("marital", "balance", 0.18),
        PlantedView("housing", "age", 0.15),
    ),
)

DIAB_RECIPE = RealRecipe(
    name="diab",
    n_rows=100_000,
    dims=(
        ("race", 6, 0.7), ("gender", 3, 0.2), ("age_bucket", 10, 0.3),
        ("admission_type", 8, 0.6), ("discharge_disposition", 10, 0.7),
        ("admission_source", 9, 0.6), ("insulin", 4, 0.4),
        ("metformin", 4, 0.6), ("change", 2, 0.1),
        ("diabetes_med", 2, 0.3), ("payer_code", 11, 0.5),
    ),
    measures=(
        ("time_in_hospital", "gamma", 4.0), ("num_lab_procedures", "gamma", 43.0),
        ("num_procedures", "gamma", 1.5), ("num_medications", "gamma", 16.0),
        ("number_outpatient", "gamma", 0.8), ("number_emergency", "gamma", 0.6),
        ("number_inpatient", "gamma", 1.2), ("number_diagnoses", "gamma", 7.0),
    ),
    split_column="readmitted",
    target_value="yes",
    other_value="no",
    target_fraction=0.4,
    # Figure 10b shape: top ten utilities closely clustered, sparse after.
    plantings=tuple(
        PlantedView(dim, measure, float(strength))
        for (dim, measure), strength in zip(
            [
                ("race", "time_in_hospital"), ("age_bucket", "num_medications"),
                ("admission_type", "num_lab_procedures"), ("insulin", "time_in_hospital"),
                ("discharge_disposition", "number_inpatient"),
                ("admission_source", "num_medications"), ("payer_code", "num_lab_procedures"),
                ("metformin", "number_diagnoses"), ("age_bucket", "number_outpatient"),
                ("race", "number_emergency"),
            ],
            np.linspace(0.60, 0.57, 10),
        )
    )
    + (
        PlantedView("gender", "num_procedures", 0.30),
        PlantedView("change", "number_diagnoses", 0.22),
        PlantedView("diabetes_med", "num_medications", 0.15),
    ),
)

AIR_RECIPE = RealRecipe(
    name="air",
    n_rows=6_000_000,
    dims=(
        ("carrier", 14, 0.6), ("origin_state", 50, 0.8), ("dest_state", 50, 0.8),
        ("month", 12, 0.1), ("day_of_week", 7, 0.0), ("dep_time_block", 6, 0.3),
        ("arr_time_block", 6, 0.3), ("distance_group", 11, 0.4),
        ("cancellation_code", 4, 0.9), ("origin_airport", 300, 1.0),
        ("dest_airport", 300, 1.0), ("aircraft_type", 30, 0.7),
    ),
    measures=(
        ("dep_delay", "gamma", 12.0), ("arr_delay", "gamma", 10.0),
        ("taxi_out", "gamma", 16.0), ("taxi_in", "gamma", 7.0),
        ("air_time", "gamma", 110.0), ("actual_elapsed", "gamma", 135.0),
        ("distance", "lognormal", 750.0), ("carrier_delay", "gamma", 4.0),
        ("weather_delay", "gamma", 3.0),
    ),
    split_column="delayed",
    target_value="yes",
    other_value="no",
    target_fraction=0.22,
    plantings=(
        PlantedView("carrier", "dep_delay", 0.8),
        PlantedView("month", "weather_delay", 0.65),
        PlantedView("dep_time_block", "taxi_out", 0.5),
        PlantedView("origin_state", "arr_delay", 0.42),
        PlantedView("distance_group", "air_time", 0.35),
        PlantedView("day_of_week", "dep_delay", 0.25),
        PlantedView("aircraft_type", "carrier_delay", 0.18),
    ),
)

CENSUS_RECIPE = RealRecipe(
    name="census",
    n_rows=21_000,
    dims=(
        ("workclass", 8, 0.7), ("education", 16, 0.5), ("occupation", 14, 0.4),
        ("relationship", 6, 0.4), ("race", 5, 0.8), ("sex", 2, 0.1),
        ("native_region", 10, 0.9), ("age_bucket", 9, 0.2),
        ("hours_bucket", 5, 0.3), ("income_bracket", 2, 0.5),
    ),
    measures=(
        ("capital_gain", "lognormal", 900.0), ("capital_loss", "gamma", 90.0),
        ("hours_per_week", "uniform", 40.0), ("fnlwgt", "lognormal", 180_000.0),
    ),
    split_column="marital_status",
    target_value="Unmarried",
    other_value="Married",
    target_fraction=0.45,
    # The user-study task (§6.1): ~6 of the views genuinely interesting,
    # led by (sex, capital_gain) — the paper's Figure 1a example.
    plantings=(
        PlantedView("sex", "capital_gain", 0.80),
        PlantedView("workclass", "capital_gain", 0.65),
        PlantedView("education", "hours_per_week", 0.55),
        PlantedView("occupation", "capital_loss", 0.45),
        PlantedView("age_bucket", "capital_gain", 0.40),
        PlantedView("income_bracket", "hours_per_week", 0.35),
    ),
)

HOUSING_RECIPE = RealRecipe(
    name="housing",
    n_rows=500,
    dims=(
        ("neighborhood", 10, 0.4), ("house_type", 4, 0.3),
        ("condition", 5, 0.2), ("zone", 4, 0.5),
    ),
    measures=(
        ("price", "lognormal", 250_000.0), ("lot_area", "lognormal", 9_000.0),
        ("living_area", "gamma", 1_800.0), ("basement_area", "gamma", 700.0),
        ("garage_area", "gamma", 450.0), ("bedrooms", "gamma", 3.0),
        ("bathrooms", "gamma", 2.0), ("year_age", "gamma", 35.0),
        ("tax", "gamma", 3_500.0), ("insurance", "gamma", 1_200.0),
    ),
    split_column="sold_above_asking",
    target_value="yes",
    other_value="no",
    target_fraction=0.4,
    plantings=(
        PlantedView("neighborhood", "price", 0.75),
        PlantedView("house_type", "living_area", 0.55),
        PlantedView("zone", "tax", 0.45),
        PlantedView("condition", "insurance", 0.30),
    ),
)

MOVIES_RECIPE = RealRecipe(
    name="movies",
    n_rows=1_000,
    dims=(
        ("genre", 12, 0.6), ("studio", 15, 0.7), ("rating", 5, 0.4),
        ("release_month", 12, 0.2), ("country", 8, 0.9), ("language", 6, 0.9),
        ("franchise", 2, 0.3), ("decade", 6, 0.5),
    ),
    measures=(
        ("budget", "lognormal", 40e6), ("gross", "lognormal", 90e6),
        ("opening_weekend", "lognormal", 20e6), ("dvd_sales", "lognormal", 8e6),
        ("runtime", "uniform", 110.0), ("critic_score", "uniform", 55.0),
        ("audience_score", "uniform", 60.0), ("marketing_spend", "lognormal", 25e6),
    ),
    split_column="won_award",
    target_value="yes",
    other_value="no",
    target_fraction=0.3,
    plantings=(
        PlantedView("genre", "gross", 0.7),
        PlantedView("studio", "budget", 0.55),
        PlantedView("release_month", "opening_weekend", 0.45),
        PlantedView("rating", "audience_score", 0.35),
        PlantedView("decade", "critic_score", 0.25),
    ),
)
