"""Dataset ingestion: CSV → on-disk chunked columnar datasets.

The out-of-core path (:mod:`repro.db.chunks`) starts from a *chunk store*
directory; this module creates them:

* :func:`ingest_csv` — stream a CSV file into a chunk store with O(batch)
  peak memory: one type-inference pass (int → float → fixed-width string,
  widest string wins), one conversion pass appending batches through a
  :class:`~repro.db.chunks.ChunkStoreWriter`.  The source never needs to
  fit in RAM.
* :func:`materialize_dataset` — write any registry dataset
  (:mod:`repro.data.registry`) to a chunk store, carrying the registry's
  split-attribute metadata into the manifest so the service can use its
  default target query.

Both return the written :class:`~repro.db.chunks.ChunkManifest`; register
the directory with :func:`repro.data.registry.register_on_disk` (or the
service's ``data_dirs`` / ``POST /datasets``) to serve it.

Command line::

    PYTHONPATH=src python -m repro.data.ingest data.csv out_dir \\
        --name mydata --chunk-rows 65536 --split-column region \\
        --target-value west --other-value east
"""

from __future__ import annotations

import argparse
import csv
import re
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.db.chunks import DEFAULT_CHUNK_ROWS, ChunkManifest, ChunkStoreWriter
from repro.db.types import DIMENSION_DISTINCT_THRESHOLD, ColumnRole
from repro.exceptions import DatasetError

#: Rows converted per batch during the write pass.
DEFAULT_BATCH_ROWS = 50_000

#: String columns with at most this many distinct values are written
#: dictionary-encoded (int32 codes + category sidecar); past it they fall
#: back to raw fixed-width storage so the inference pass stays O(distinct).
MAX_DICT_CATEGORIES = 1 << 16

#: Plain decimal integer: optional sign, digits.  Deliberately narrower
#: than Python's ``int()``, which also accepts underscore separators
#: (``"1_000"``) — a CSV cell ``"1_0"`` must ingest as the *string*
#: ``"1_0"``, not the number 10.
_INT_RE = re.compile(r"[+-]?[0-9]+\Z")
#: Plain decimal float with optional exponent.  Narrower than Python's
#: ``float()``, which also accepts underscores, ``"inf"``/``"Infinity"``,
#: and ``"NaN"`` — none of which a data file should silently turn numeric.
_FLOAT_RE = re.compile(r"[+-]?([0-9]+\.?[0-9]*|\.[0-9]+)([eE][+-]?[0-9]+)?\Z")


def strict_int(cell: str) -> int:
    """Parse a plain decimal integer cell; raise ``ValueError`` otherwise."""
    if _INT_RE.match(cell) is None:
        raise ValueError(f"not a plain decimal integer: {cell!r}")
    return int(cell)


def strict_float(cell: str) -> float:
    """Parse a plain decimal float cell; raise ``ValueError`` otherwise."""
    if _FLOAT_RE.match(cell) is None:
        raise ValueError(f"not a plain decimal number: {cell!r}")
    return float(cell)


class _ColumnProfile:
    """Running type/role profile of one CSV column (inference pass)."""

    __slots__ = ("name", "could_be_int", "could_be_float", "max_chars",
                 "has_missing", "int_values", "str_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.could_be_int = True
        self.could_be_float = True
        self.max_chars = 1
        self.has_missing = False
        #: Distinct int values, tracked only up to the dimension threshold.
        self.int_values: set[int] | None = set()
        #: Distinct cell strings, tracked up to ``MAX_DICT_CATEGORIES``.
        self.str_values: set[str] | None = set()

    def observe(self, cell: str) -> None:
        if cell == "":
            self.has_missing = True
            return
        self.max_chars = max(self.max_chars, len(cell))
        if self.str_values is not None:
            self.str_values.add(cell)
            if len(self.str_values) > MAX_DICT_CATEGORIES:
                self.str_values = None
        if self.could_be_int:
            try:
                value = strict_int(cell)
            except ValueError:
                self.could_be_int = False
            else:
                if self.int_values is not None:
                    self.int_values.add(value)
                    if len(self.int_values) > DIMENSION_DISTINCT_THRESHOLD:
                        self.int_values = None
                return
        if self.could_be_float:
            try:
                strict_float(cell)
            except ValueError:
                self.could_be_float = False

    def string_categories(self) -> np.ndarray | None:
        """Sorted category array for dict encoding, or None (too many)."""
        if self.str_values is None:
            return None
        values = set(self.str_values)
        if self.has_missing:
            values.add("")
        return np.sort(np.asarray(list(values), dtype=self.dtype()))

    def dtype(self) -> np.dtype:
        if self.could_be_int and not self.has_missing:
            return np.dtype(np.int64)
        if self.could_be_float or self.could_be_int:
            # Numeric with missing cells: promote to float64 so gaps can
            # be NaN (int64 has no missing representation).
            return np.dtype(np.float64)
        return np.dtype(f"<U{self.max_chars}")

    def default_role(self) -> ColumnRole:
        dtype = self.dtype()
        if dtype.kind == "U":
            return ColumnRole.DIMENSION
        if dtype.kind == "f":
            return ColumnRole.MEASURE
        if self.int_values is not None:
            return ColumnRole.DIMENSION
        return ColumnRole.MEASURE


def _convert(cells: list[str], dtype: np.dtype) -> np.ndarray:
    if dtype.kind == "U":
        return np.asarray(cells, dtype=dtype)
    if dtype.kind == "i":
        return np.asarray([strict_int(cell) for cell in cells], dtype=dtype)
    return np.asarray(
        [strict_float(cell) if cell != "" else np.nan for cell in cells],
        dtype=dtype,
    )


def _coerce_role(value: ColumnRole | str) -> ColumnRole:
    if isinstance(value, ColumnRole):
        return value
    try:
        return ColumnRole(value)
    except ValueError:
        raise DatasetError(
            f"unknown column role {value!r}; expected one of "
            f"{[r.value for r in ColumnRole]}"
        ) from None


def ingest_csv(
    csv_path: str | Path,
    out_dir: str | Path,
    *,
    name: str | None = None,
    roles: Mapping[str, ColumnRole | str] | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    delimiter: str = ",",
    description: str = "",
    split_column: str | None = None,
    target_value: str | None = None,
    other_value: str | None = None,
) -> ChunkManifest:
    """Stream a headered CSV file into a chunk store at ``out_dir``.

    Two passes over the file, never more than ``batch_rows`` rows in
    memory.  Types are inferred per column (all-int → int64, numeric →
    float64 with empty cells as NaN, otherwise a fixed-width string);
    roles follow the table heuristic (strings and low-cardinality ints are
    dimensions, the rest measures) unless overridden via ``roles`` — the
    ``split_column``, when given, defaults to role ``other`` and is
    recorded in the manifest as the dataset's analyst-query attribute.
    """
    source = Path(csv_path)
    if not source.is_file():
        raise DatasetError(f"no such CSV file: {source}")
    if batch_rows <= 0:
        raise DatasetError(f"batch_rows must be positive, got {batch_rows}")
    role_overrides = {key: _coerce_role(value) for key, value in (roles or {}).items()}

    with open(source, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader, None)
        if not header or any(not col.strip() for col in header):
            raise DatasetError(f"{source} has no usable header row")
        header = [col.strip() for col in header]
        if len(set(header)) != len(header):
            raise DatasetError(f"{source} has duplicate column names: {header}")
        profiles = [_ColumnProfile(col) for col in header]
        for line, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise DatasetError(
                    f"{source}:{line}: expected {len(header)} cells, got {len(row)}"
                )
            for profile, cell in zip(profiles, row):
                profile.observe(cell.strip())

    unknown = set(role_overrides) - set(header)
    if unknown:
        raise DatasetError(f"roles given for unknown columns: {sorted(unknown)}")
    if split_column is not None and split_column not in header:
        raise DatasetError(f"split column {split_column!r} not in {header}")

    writer = ChunkStoreWriter(
        out_dir,
        name or source.stem,
        chunk_rows,
        description=description or f"ingested from {source.name}",
        split_column=split_column,
        target_value=target_value,
        other_value=other_value,
    )
    dtypes = [profile.dtype() for profile in profiles]
    sinks = []
    encoders: list[np.ndarray | None] = []
    for profile, dtype in zip(profiles, dtypes):
        role = role_overrides.get(profile.name)
        if role is None:
            role = (
                ColumnRole.OTHER
                if profile.name == split_column
                else profile.default_role()
            )
        categories = profile.string_categories() if dtype.kind == "U" else None
        encoders.append(categories)
        sinks.append(
            writer.add_column(profile.name, dtype, role, categories=categories)
        )

    with open(source, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        next(reader)  # header
        batch: list[list[str]] = [[] for _ in header]
        pending = 0

        def flush() -> None:
            nonlocal pending
            for sink, cells, dtype, categories in zip(sinks, batch, dtypes, encoders):
                converted = _convert(cells, dtype)
                if categories is not None:
                    converted = np.searchsorted(categories, converted)
                sink.append(converted)
                cells.clear()
            pending = 0

        for line, row in enumerate(reader, start=2):
            # Re-validate the shape even though the inference pass already
            # did: the file may have changed between the two passes, and a
            # short or long row would otherwise silently misalign cells
            # across columns (zip truncates).
            if len(row) != len(header):
                raise DatasetError(
                    f"{source}:{line}: expected {len(header)} cells, got "
                    f"{len(row)} (file changed between passes?)"
                )
            for cells, cell in zip(batch, row):
                cells.append(cell.strip())
            pending += 1
            if pending >= batch_rows:
                flush()
        if pending:
            flush()
    return writer.finish()


def materialize_dataset(
    dataset: str,
    out_dir: str | Path,
    *,
    seed: int = 0,
    scale: str | None = None,
    n_rows: int | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> ChunkManifest:
    """Write a registry dataset to a chunk store, keeping its metadata.

    The registry spec's split attribute (target/other values) lands in the
    manifest so a table opened from the store keeps working with the
    service's default target query.
    """
    from repro.data import registry
    from repro.db.chunks import write_table

    table, spec = registry.build_info(dataset, seed=seed, scale=scale, n_rows=n_rows)
    return write_table(
        table,
        out_dir,
        chunk_rows,
        description=spec.description,
        split_column=spec.split_column,
        target_value=spec.target_value,
        other_value=spec.other_value,
    )


def main(argv: Sequence[str] | None = None) -> None:
    """Command-line CSV ingestion (see module docstring)."""
    parser = argparse.ArgumentParser(
        description="Ingest a CSV file into an on-disk chunked dataset"
    )
    parser.add_argument("csv_path", help="source CSV file (with a header row)")
    parser.add_argument("out_dir", help="chunk-store directory to create")
    parser.add_argument("--name", default=None, help="dataset name (default: file stem)")
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS)
    parser.add_argument("--batch-rows", type=int, default=DEFAULT_BATCH_ROWS)
    parser.add_argument("--delimiter", default=",")
    parser.add_argument("--split-column", default=None)
    parser.add_argument("--target-value", default=None)
    parser.add_argument("--other-value", default=None)
    args = parser.parse_args(argv)
    manifest = ingest_csv(
        args.csv_path,
        args.out_dir,
        name=args.name,
        chunk_rows=args.chunk_rows,
        batch_rows=args.batch_rows,
        delimiter=args.delimiter,
        split_column=args.split_column,
        target_value=args.target_value,
        other_value=args.other_value,
    )
    print(
        f"ingested {manifest.n_rows} rows x {len(manifest.columns)} columns "
        f"into {args.out_dir} (chunk_rows={manifest.chunk_rows}, "
        f"digest={manifest.digest[:12]}...)"
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
