"""Deviation planting: make chosen views genuinely interesting.

The pruning experiments (paper §5.4) depend on the *distribution of true
utilities across views* (their Figure 10): a few clearly-deviating views, a
cluster of near-ties, and a long tail of boring ones.  Planting gives us
that control: a :class:`PlantedView` names a (dimension, measure) pair and a
strength; the generator then adds a group-dependent shift to that measure —
*only for rows in the target slice* — so the conditional distribution of the
measure over that dimension's groups differs between target and reference by
an amount that grows with strength.

Measures depend only on their planted dimensions (plus noise), so all other
(dimension, measure) pairs show near-zero deviation: dimensions are sampled
independently, hence conditioning on a non-planted dimension yields the same
mixture on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PlantedView:
    """One deliberately-deviating (dimension, measure) pair.

    ``strength`` is roughly the fraction of probability mass moved between
    the first and second half of the dimension's groups; the resulting EMD
    utility grows monotonically with it (calibrated in tests).
    """

    dimension: str
    measure: str
    strength: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0,1], got {self.strength}")


def planting_multiplier(
    dim_codes: np.ndarray,
    n_groups: int,
    strength: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-row multiplier implementing one planting's group-dependent shift.

    Groups are assigned a fixed ±1 pattern (first half positive, second half
    negative, randomly permuted per planting); the multiplier is
    ``1 + strength * pattern[group]``.  The multiplicative form keeps values
    nonnegative; the permutation decorrelates plantings that share a
    dimension.
    """
    pattern = np.ones(n_groups)
    pattern[n_groups // 2 :] = -1.0
    pattern = pattern[rng.permutation(n_groups)]
    return 1.0 + strength * pattern[dim_codes]


def apply_planting(
    measure_values: np.ndarray,
    dim_codes: np.ndarray,
    n_groups: int,
    in_target: np.ndarray,
    strength: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return measure values with a target-only, group-dependent shift."""
    if strength <= 0.0:
        return measure_values
    multiplier = planting_multiplier(dim_codes, n_groups, strength, rng)
    out = measure_values.copy()
    out[in_target] = measure_values[in_target] * multiplier[in_target]
    return out


def apply_plantings(
    measure_values: np.ndarray,
    plantings: list[tuple[np.ndarray, int, float]],
    in_target: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply many plantings to one measure with a single pass.

    ``plantings`` is a list of ``(dim_codes, n_groups, strength)``.  The
    per-planting multipliers are accumulated first and the measure touched
    once — on a 6M-row AIR surrogate with ~100 background plantings this is
    the difference between seconds and minutes.
    """
    live = [(codes, n, s) for codes, n, s in plantings if s > 0.0]
    if not live:
        return measure_values
    target_rows = np.flatnonzero(in_target)
    combined = np.ones(len(target_rows))
    for codes, n_groups, strength in live:
        combined *= planting_multiplier(codes[target_rows], n_groups, strength, rng)
    out = measure_values.copy()
    out[target_rows] = measure_values[target_rows] * combined
    return out


def strength_ladder(
    n_planted: int, top: float = 0.8, bottom: float = 0.15
) -> list[float]:
    """Decreasing planting strengths from ``top`` to ``bottom``.

    Produces the shape of the paper's Figure 10 utility distributions: a
    couple of standout views, then progressively closer utilities (small
    consecutive gaps Δk near the middle of the ladder).
    """
    if n_planted <= 0:
        return []
    if n_planted == 1:
        return [top]
    return list(np.linspace(top, bottom, n_planted))
