"""Kullback–Leibler divergence.

KL is unbounded and undefined where the reference has zero mass, so both
distributions are smoothed with a small epsilon and renormalized.  Because
the value is not confined to [0, 1], ``bounded`` is False: CI pruning's
worst-case intervals are heuristic under KL (the paper's §4.2 notes the
schemes still "work well for a variety of metrics" — our benchmarks check
exactly that).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceFunction, register_metric

_EPSILON = 1e-9


class KullbackLeiblerDivergence(DistanceFunction):
    """``KL(p || q)`` with epsilon smoothing, in nats."""

    name = "kl"
    bounded = False

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        p_s = (p + _EPSILON) / (p + _EPSILON).sum()
        q_s = (q + _EPSILON) / (q + _EPSILON).sum()
        return float(np.sum(p_s * np.log(p_s / q_s)))


register_metric(KullbackLeiblerDivergence())
