"""MAX_DIFF: largest per-group probability gap.

Ranks visualizations by the single group where target and reference differ
the most — one of the alternative metrics the paper's §4.2 evaluates its
pruning schemes against.  Bounded in [0, 1] by construction.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceFunction, register_metric


class MaxDifference(DistanceFunction):
    """``max_i |p_i - q_i|``."""

    name = "maxdiff"
    bounded = True

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        return float(np.max(np.abs(p - q)))


register_metric(MaxDifference())
