"""Turning aggregate summaries into comparable probability distributions.

The paper (§2): "To ensure that all aggregate summaries have the same scale,
we normalize each summary into a probability distribution (i.e. the values
of f(m) sum to 1)."  Negative aggregate values (possible for SUM/AVG of a
signed measure) are clipped to zero before normalizing — a distribution
cannot carry negative mass; the clip is documented behaviour, and callers
with signed measures should shift them first.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError


def normalize_distribution(values: np.ndarray) -> np.ndarray:
    """Normalize a nonnegative vector to sum to 1.

    NaNs (empty groups) and negative values are treated as zero mass.  If
    every entry is zero the result is uniform — two all-zero summaries are
    indistinguishable, and uniform keeps every metric finite.
    """
    arr = np.asarray(values, dtype=np.float64).copy()
    if arr.ndim != 1:
        raise MetricError(f"distribution must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise MetricError("cannot normalize an empty summary")
    arr[~np.isfinite(arr)] = 0.0
    np.clip(arr, 0.0, None, out=arr)
    total = arr.sum()
    if total <= 0.0:
        return np.full(arr.shape, 1.0 / arr.size)
    return arr / total


def align_distributions(
    target: dict[object, float], reference: dict[object, float]
) -> tuple[list[object], np.ndarray, np.ndarray]:
    """Align two per-group summaries on the union of their group keys.

    Groups missing from one side get zero mass there (the paper's target and
    reference views may see different group sets when the selection removes
    some groups entirely).  Keys are sorted so EMD's ground distance over
    category positions is deterministic.  Returns ``(keys, p, q)`` with both
    vectors normalized.
    """
    keys = sorted(set(target) | set(reference), key=repr)
    if not keys:
        raise MetricError("cannot align two empty summaries")
    p_raw = np.asarray([target.get(key, 0.0) for key in keys], dtype=np.float64)
    q_raw = np.asarray([reference.get(key, 0.0) for key in keys], dtype=np.float64)
    return keys, normalize_distribution(p_raw), normalize_distribution(q_raw)
