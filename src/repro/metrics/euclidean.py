"""Euclidean distance between distributions.

Normalized by ``sqrt(2)``, the maximum L2 distance between two probability
vectors (all mass on different single categories), so values lie in [0, 1].
The paper's technical report proves the consistency property (their
Property 4.1) for this metric via Hoeffding's inequality.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.base import DistanceFunction, register_metric


class EuclideanDistance(DistanceFunction):
    """``||p - q||_2 / sqrt(2)``."""

    name = "euclidean"
    bounded = True

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        return float(np.linalg.norm(p - q) / math.sqrt(2.0))


register_metric(EuclideanDistance())
