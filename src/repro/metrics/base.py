"""Distance-function protocol and registry."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import MetricError

_REGISTRY: dict[str, "DistanceFunction"] = {}


class DistanceFunction(abc.ABC):
    """Distance between two aligned probability distributions.

    Subclasses set ``name`` (registry key) and ``bounded`` (True when the
    value is guaranteed in [0, 1], which CI pruning's Hoeffding–Serfling
    intervals assume).
    """

    name: str = ""
    bounded: bool = True

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        p = np.asarray(p, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        if p.shape != q.shape:
            raise MetricError(f"shape mismatch: {p.shape} vs {q.shape}")
        if p.size == 0:
            raise MetricError("empty distributions")
        if not (np.all(p >= -1e-12) and np.all(q >= -1e-12)):
            raise MetricError("distributions must be nonnegative")
        return float(self.compute(p, q))

    @abc.abstractmethod
    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between validated, same-shape distributions."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def register_metric(metric: DistanceFunction) -> DistanceFunction:
    """Add a metric instance to the global registry (by its ``name``)."""
    if not metric.name:
        raise MetricError("metric must define a non-empty name")
    _REGISTRY[metric.name] = metric
    return metric


def get_metric(name: str) -> DistanceFunction:
    """Look up a metric by registry name (e.g. ``"emd"``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise MetricError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_metrics() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
