"""Earth Mover's Distance — SeeDB's default utility metric.

For one-dimensional distributions over ordered category positions with unit
ground distance between neighbours, EMD reduces to the L1 distance between
the CDFs (a classical result; scipy's ``wasserstein_distance`` computes the
same quantity for sample-weight inputs).  We normalize by the maximum
possible value, ``n - 1`` (all mass moved end to end), so utilities live in
[0, 1] as CI pruning requires.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceFunction, register_metric


class EarthMoversDistance(DistanceFunction):
    """1-D EMD over category positions, normalized into [0, 1]."""

    name = "emd"
    bounded = True

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        if p.size == 1:
            return 0.0
        cdf_gap = np.abs(np.cumsum(p - q))[:-1].sum()
        return cdf_gap / (p.size - 1)


register_metric(EarthMoversDistance())
