"""Jensen–Shannon distance.

The square root of the Jensen–Shannon divergence computed with base-2
logarithms is a metric bounded in [0, 1] — the "Jenson-Shannon Distance" the
paper lists among its supported functions.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceFunction, register_metric

_EPSILON = 1e-12


class JensenShannonDistance(DistanceFunction):
    """``sqrt(JSD_base2(p, q))`` in [0, 1]."""

    name = "js"
    bounded = True

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        p_s = (p + _EPSILON) / (p + _EPSILON).sum()
        q_s = (q + _EPSILON) / (q + _EPSILON).sum()
        mid = 0.5 * (p_s + q_s)
        divergence = 0.5 * np.sum(p_s * np.log2(p_s / mid)) + 0.5 * np.sum(
            q_s * np.log2(q_s / mid)
        )
        return float(np.sqrt(max(divergence, 0.0)))


register_metric(JensenShannonDistance())
