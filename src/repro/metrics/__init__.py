"""Distance functions over probability distributions (paper §2).

SeeDB scores a view by the distance between the target and reference
aggregate summaries after normalizing each into a probability distribution.
The paper's default is Earth Mover's Distance; Euclidean, Kullback–Leibler,
Jensen–Shannon, and MAX_DIFF are also supported (§2, §4.2 "Consistent
Distance Functions").

All metrics are registered by name; ``get_metric("emd")`` is what the
recommender uses.  Every bounded metric returns values in [0, 1], which is
what the Hoeffding–Serfling confidence intervals of CI pruning assume.
"""

from repro.metrics.base import DistanceFunction, get_metric, list_metrics, register_metric
from repro.metrics.emd import EarthMoversDistance
from repro.metrics.euclidean import EuclideanDistance
from repro.metrics.js import JensenShannonDistance
from repro.metrics.kl import KullbackLeiblerDivergence
from repro.metrics.maxdiff import MaxDifference
from repro.metrics.normalize import align_distributions, normalize_distribution

__all__ = [
    "DistanceFunction",
    "EarthMoversDistance",
    "EuclideanDistance",
    "JensenShannonDistance",
    "KullbackLeiblerDivergence",
    "MaxDifference",
    "align_distributions",
    "get_metric",
    "list_metrics",
    "normalize_distribution",
    "register_metric",
]
