"""Empirical checks of the consistency property (paper Property 4.1).

A distance function is *consistent* when the utility estimated from a
uniformly random sample converges to the true utility as samples grow.  The
paper proves this for Euclidean distance via Hoeffding's inequality and
relies on it empirically for EMD and MAX_DIFF.  This module measures the
convergence curve so tests and the ablation benchmark can verify it for
every registered metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.base import DistanceFunction
from repro.metrics.normalize import normalize_distribution


@dataclass(frozen=True)
class ConsistencyCurve:
    """Estimation error of a metric at increasing sample sizes."""

    metric_name: str
    sample_sizes: tuple[int, ...]
    mean_abs_errors: tuple[float, ...]

    def is_decreasing(self, tolerance: float = 0.0) -> bool:
        """True when error at the largest sample beats the smallest sample."""
        return self.mean_abs_errors[-1] <= self.mean_abs_errors[0] + tolerance


def sampled_utility(
    metric: DistanceFunction,
    target_values: np.ndarray,
    target_groups: np.ndarray,
    reference_values: np.ndarray,
    reference_groups: np.ndarray,
    n_groups: int,
    sample_size: int,
    rng: np.random.Generator,
) -> float:
    """Utility estimated from a uniform row sample of both sides.

    Group means (AVG aggregate) are computed on the sample, normalized, and
    fed to the metric — exactly what a phase-truncated SeeDB run sees.
    """
    t_idx = rng.choice(len(target_values), size=min(sample_size, len(target_values)), replace=False)
    r_idx = rng.choice(
        len(reference_values), size=min(sample_size, len(reference_values)), replace=False
    )
    p = _group_means(target_values[t_idx], target_groups[t_idx], n_groups)
    q = _group_means(reference_values[r_idx], reference_groups[r_idx], n_groups)
    return metric(normalize_distribution(p), normalize_distribution(q))


def consistency_curve(
    metric: DistanceFunction,
    target_values: np.ndarray,
    target_groups: np.ndarray,
    reference_values: np.ndarray,
    reference_groups: np.ndarray,
    n_groups: int,
    sample_sizes: tuple[int, ...] = (50, 200, 1000, 5000),
    n_repeats: int = 10,
    seed: int = 0,
) -> ConsistencyCurve:
    """Mean |estimate - truth| at each sample size (truth = full data)."""
    rng = np.random.default_rng(seed)
    p_true = _group_means(target_values, target_groups, n_groups)
    q_true = _group_means(reference_values, reference_groups, n_groups)
    truth = metric(normalize_distribution(p_true), normalize_distribution(q_true))
    errors = []
    for size in sample_sizes:
        trials = [
            abs(
                sampled_utility(
                    metric,
                    target_values,
                    target_groups,
                    reference_values,
                    reference_groups,
                    n_groups,
                    size,
                    rng,
                )
                - truth
            )
            for _ in range(n_repeats)
        ]
        errors.append(float(np.mean(trials)))
    return ConsistencyCurve(metric.name, tuple(sample_sizes), tuple(errors))


def _group_means(values: np.ndarray, groups: np.ndarray, n_groups: int) -> np.ndarray:
    sums = np.bincount(groups, weights=values, minlength=n_groups)
    counts = np.bincount(groups, minlength=n_groups)
    return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
