"""Result tables: the rows each benchmark prints.

Plain list-of-dicts with aligned-text and markdown rendering — the same
rows the paper's figures plot, in a form that diffing and EXPERIMENTS.md
can both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of result rows."""

    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **row: object) -> None:
        self.rows.append(row)

    @property
    def columns(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Aligned fixed-width text rendering."""
        cols = self.columns
        if not cols:
            return f"== {self.title} ==\n(no rows)"
        rendered = [[_format(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in rendered)) if rendered else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        cols = self.columns
        if not cols:
            return f"### {self.title}\n\n(no rows)\n"
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format(row.get(c, "")) for c in cols) + " |"
            )
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        lines.append("")
        return "\n".join(lines)
