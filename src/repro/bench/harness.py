"""Shared benchmark plumbing: scaled setups and run helpers."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.config import EngineConfig, StoreKind
from repro.core.recommender import SeeDB, tuned_config
from repro.data.registry import build_info, current_scale
from repro.db.buffer import BufferPool
from repro.db.expressions import Expression
from repro.db.table import Table

#: The paper's testbed keeps large tables out of memory (974MB AIR vs a
#: few-hundred-MB buffer cache).  To preserve that table:memory ratio at
#: reduced dataset scales, benchmark buffer pools are sized as a fraction
#: of the table.
POOL_FRACTION_OF_TABLE = 1 / 8


def scaled_buffer_pool(table: Table, fraction: float = POOL_FRACTION_OF_TABLE) -> BufferPool:
    """Buffer pool sized relative to the table (min 1 MB)."""
    return BufferPool(max(int(table.logical_size_bytes() * fraction), 1 << 20))


@dataclass
class BenchContext:
    """One dataset wired up for benchmarking on one store."""

    table: Table
    target: Expression
    seedb: SeeDB
    dataset: str
    store: StoreKind

    @classmethod
    def for_dataset(
        cls,
        dataset: str,
        store: StoreKind = "row",
        scale: str | None = None,
        seed: int = 0,
        config: EngineConfig | None = None,
        scale_pool: bool = True,
        shuffle_seed: int | None = None,
    ) -> "BenchContext":
        table, spec = _cached_dataset(dataset, scale or current_scale(), seed)
        if shuffle_seed is not None:
            table = table.shuffled(shuffle_seed)
        pool = scaled_buffer_pool(table) if scale_pool else None
        seedb = SeeDB.over_table(
            table,
            store=store,
            config=config or tuned_config(store),
            buffer_pool=pool,
        )
        return cls(
            table=table,
            target=spec.target_predicate(),
            seedb=seedb,
            dataset=dataset,
            store=store,
        )

    def cold_run(self, **kwargs: object):
        """Clear the buffer pool, then run the engine (cold-cache run)."""
        self.seedb.store.buffer_pool.clear()
        return self.seedb.run_engine(self.target, **kwargs)  # type: ignore[arg-type]


@lru_cache(maxsize=8)
def _cached_dataset(dataset: str, scale: str, seed: int):
    """Dataset construction is expensive at full scale; cache per-process."""
    return build_info(dataset, seed=seed, scale=scale)
