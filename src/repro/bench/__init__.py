"""Benchmark harness: one function per paper table/figure.

:mod:`repro.bench.experiments` contains the experiment implementations; the
``benchmarks/`` directory wraps them as pytest-benchmark targets, and
``benchmarks/run_all.py`` regenerates every series and writes
EXPERIMENTS.md.
"""

from repro.bench.tables import ResultTable
from repro.bench.harness import BenchContext, scaled_buffer_pool

__all__ = ["BenchContext", "ResultTable", "scaled_buffer_pool"]
