"""One function per paper table/figure (the per-experiment index of DESIGN.md).

Every function returns a :class:`~repro.bench.tables.ResultTable` whose rows
are the series the corresponding figure plots.  ``SEEDB_SCALE`` controls
dataset sizes and repetition counts (smoke/small/full); the *shapes* —
orderings, speedup factors, crossovers — are scale-stable, which is what
EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

import os
import time
from typing import Mapping

import numpy as np

from repro.bench.harness import BenchContext, scaled_buffer_pool
from repro.bench.tables import ResultTable
from repro.core.recommender import SeeDB, tuned_config
from repro.core.result import accuracy, utility_distance
from repro.data import registry, synthetic
from repro.data.registry import current_scale
from repro.db.expressions import eq
from repro.study import (
    ExpertPanel,
    consensus_labels,
    roc_curve,
    run_user_study,
)

# --------------------------------------------------------------------------- #
# scale knobs
# --------------------------------------------------------------------------- #


def _runs_for_quality() -> int:
    """Shuffled repetitions for the §5.4 quality experiments (paper: 20)."""
    return {"smoke": 3, "small": 5, "full": 20}[current_scale()]


def _quality_ks() -> list[int]:
    return {
        "smoke": [1, 5, 10],
        "small": [1, 2, 3, 5, 7, 10, 15, 20, 25],
        "full": list(range(1, 26)),
    }[current_scale()]


def _syn_rows() -> list[int]:
    return {
        "smoke": [2_000, 5_000, 10_000],
        "small": [25_000, 50_000, 100_000],
        "full": [100_000, 250_000, 500_000, 1_000_000],
    }[current_scale()]


def _syn_views() -> list[int]:
    return {"smoke": [20, 50], "small": [50, 100, 250], "full": [50, 100, 150, 200, 250]}[
        current_scale()
    ]


# --------------------------------------------------------------------------- #
# Table 1 — dataset inventory
# --------------------------------------------------------------------------- #


def table1_datasets(scale: str | None = None) -> ResultTable:
    table = ResultTable(
        "Table 1: datasets (surrogates; paper_rows = published row count)",
        notes="|A| x |M| = view count; sizes are logical bytes at the built scale",
    )
    for row in registry.table_one_inventory(scale=scale):
        table.add(**row)
    return table


# --------------------------------------------------------------------------- #
# Figure 5 — overall speedups on real datasets
# --------------------------------------------------------------------------- #

_FIG5_STRATEGIES = (
    ("no_opt", "none"),
    ("sharing", "none"),
    ("comb", "ci"),
    ("comb_early", "ci"),
)


def fig5_overall(store: str = "row", datasets: tuple[str, ...] | None = None, k: int = 10) -> ResultTable:
    """NO_OPT vs SHARING vs COMB vs COMB_EARLY, CI pruning, k=10 (Fig. 5a/5b)."""
    if datasets is None:
        datasets = ("bank", "diab", "air") if current_scale() != "full" else (
            "bank", "diab", "air", "air10"
        )
    table = ResultTable(
        f"Figure 5 ({store.upper()}): latency by strategy, k={k}, CI pruning",
        notes="speedup is modeled latency relative to NO_OPT on the same store",
    )
    for dataset in datasets:
        ctx = BenchContext.for_dataset(dataset, store=store)  # type: ignore[arg-type]
        base_latency = None
        for strategy, pruner in _FIG5_STRATEGIES:
            run = ctx.cold_run(k=k, strategy=strategy, pruner=pruner)
            if base_latency is None:
                base_latency = run.modeled_latency
            table.add(
                dataset=dataset.upper(),
                strategy=strategy.upper(),
                modeled_latency_s=run.modeled_latency,
                wall_s=run.wall_seconds,
                queries=run.stats.queries_issued,
                phases=run.phases_executed,
                speedup=base_latency / max(run.modeled_latency, 1e-12),
            )
    return table


# --------------------------------------------------------------------------- #
# Figure 6 — baseline latency vs rows and vs views
# --------------------------------------------------------------------------- #


def fig6_baseline(store_kinds: tuple[str, ...] = ("row", "col")) -> ResultTable:
    """NO_OPT latency vs dataset size (6a) and number of views (6b) on SYN."""
    table = ResultTable(
        "Figure 6: basic framework (NO_OPT) latency scaling on SYN",
        notes="linear in rows and views; COL ~5x faster than ROW",
    )
    views_fixed = min(_syn_views()[-1], 100)
    for n_rows in _syn_rows():
        syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=10, n_measures=5)
        for store in store_kinds:
            seedb = SeeDB.over_table(
                syn, store=store, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
            )
            space = list(seedb.view_space())[: views_fixed]
            run = seedb.run_engine(
                eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE),
                k=10,
                strategy="no_opt",
                pruner="none",
                views=space,
            )
            table.add(
                sweep="rows",
                store=store.upper(),
                n_rows=n_rows,
                n_views=len(space),
                modeled_latency_s=run.modeled_latency,
                queries=run.stats.queries_issued,
            )
    rows_fixed = _syn_rows()[0]
    syn = synthetic.make_syn(n_rows=rows_fixed, n_dimensions=25, n_measures=10)
    for n_views in _syn_views():
        for store in store_kinds:
            seedb = SeeDB.over_table(
                syn, store=store, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
            )
            space = list(seedb.view_space())[:n_views]
            run = seedb.run_engine(
                eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE),
                k=10,
                strategy="no_opt",
                pruner="none",
                views=space,
            )
            table.add(
                sweep="views",
                store=store.upper(),
                n_rows=rows_fixed,
                n_views=n_views,
                modeled_latency_s=run.modeled_latency,
                queries=run.stats.queries_issued,
            )
    return table


# --------------------------------------------------------------------------- #
# Figure 7a — combine multiple aggregates
# --------------------------------------------------------------------------- #


def fig7a_aggregates(store_kinds: tuple[str, ...] = ("row", "col")) -> ResultTable:
    """Latency vs max aggregates per query, n_agg in 1..20 (Fig. 7a)."""
    table = ResultTable(
        "Figure 7a: effect of combining multiple aggregates (SYN)",
        notes="latency falls with n_agg, sub-linearly; 3-4x total",
    )
    n_rows = _syn_rows()[0]
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=5, n_measures=20)
    n_aggs = [1, 2, 5, 10, 20] if current_scale() != "smoke" else [1, 5, 20]
    for store in store_kinds:
        for n_agg in n_aggs:
            config = tuned_config(store).with_(  # type: ignore[arg-type]
                max_aggregates_per_query=n_agg,
                use_binpacking=False,
                max_group_bys_per_query=1,
            )
            seedb = SeeDB.over_table(
                syn, store=store, config=config, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
            )
            run = seedb.run_engine(
                eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE),
                k=10,
                strategy="sharing",
                pruner="none",
            )
            table.add(
                store=store.upper(),
                n_agg=n_agg,
                modeled_latency_s=run.modeled_latency,
                queries=run.stats.queries_issued,
            )
    return table


# --------------------------------------------------------------------------- #
# Figure 7b — parallel query execution
# --------------------------------------------------------------------------- #


#: Fig. 7b's published x-axis: parallelism levels around the paper's 16 cores.
_FIG7B_MODELED_POINTS = (1, 2, 4, 8, 16, 24, 32, 48, 64)


def _measured_worker_points(limit: int) -> set[int]:
    """Worker counts to measure in the range 1..limit: powers of two plus
    the endpoint — dense enough for the curve shape without making the
    sweep linear in the host's core count."""
    points = {1, limit}
    n = 2
    while n < limit:
        points.add(n)
        n *= 2
    return points


def _measured_rows(scale: str | None = None) -> int:
    """SYN row count for measured-speedup runs (1M rows at full scale —
    the acceptance-criterion table)."""
    return {"smoke": 20_000, "small": 100_000, "full": 1_000_000}[
        scale or current_scale()
    ]


def fig7b_parallelism(store: str = "row", measure: bool = True) -> ResultTable:
    """Latency vs number of parallel queries; optimum near n_cores (Fig. 7b).

    Every sweep point reports the deterministic *modeled* latency (the
    U-shape with its optimum at the modeled core count).  Points spanning 1
    to 2x the **host's** cores (powers of two plus the endpoint)
    additionally execute the same run with ``parallelism="real"`` — genuine
    thread-pool query execution — and report measured wall seconds plus
    speedup over the 1-worker run, so the measured curve sits next to the
    modeled one.  Each measured point also re-checks the determinism
    contract (identical ``selected``).
    """
    host_cores = os.cpu_count() or 1
    table = ResultTable(
        "Figure 7b: effect of parallelism (SYN)",
        notes="modeled U-shape with optimum at ~16 (the modeled core count); "
        f"wall_s/measured_speedup are real thread-pool runs (host cores: {host_cores})",
    )
    n_rows = _syn_rows()[0]
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=20, n_measures=10)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    measured_points = _measured_worker_points(2 * host_cores) if measure else set()
    base_wall: float | None = None
    for n_parallel in sorted(set(_FIG7B_MODELED_POINTS) | measured_points):
        config = tuned_config(store).with_(  # type: ignore[arg-type]
            n_parallel_queries=n_parallel,
            use_binpacking=False,
            max_group_bys_per_query=1,
            max_aggregates_per_query=1,
        )
        seedb = SeeDB.over_table(
            syn, store=store, config=config, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
        )
        run = seedb.run_engine(target, k=10, strategy="sharing", pruner="none")
        row: dict[str, object] = dict(
            store=store.upper(),
            n_parallel=n_parallel,
            modeled_latency_s=run.modeled_latency,
            queries=run.stats.queries_issued,
        )
        if n_parallel in measured_points:
            seedb.store.buffer_pool.clear()
            real = seedb.run_engine(
                target, k=10, strategy="sharing", pruner="none", parallelism="real"
            )
            if real.selected != run.selected:
                raise AssertionError(
                    f"parallel run ({n_parallel} workers) broke determinism"
                )
            if base_wall is None:
                base_wall = real.wall_seconds
            row.update(
                wall_s=real.wall_seconds,
                measured_speedup=base_wall / max(real.wall_seconds, 1e-12),
            )
        table.add(**row)
    return table


def fig7b_measured_speedup(
    n_rows: int | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    store: str = "row",
) -> ResultTable:
    """Measured wall-clock speedup of real parallel execution (Fig. 7b).

    Runs the SHARING strategy over a SYN table (default: scale-resolved
    rows — 1M at full scale, the acceptance-criterion table; pass ``n_rows``
    to override) at each worker count and reports wall seconds and speedup
    relative to one worker.  NumPy releases the GIL on the aggregation hot
    paths, so the thread pool yields true parallel speedup when the host
    has the cores.
    """
    n_rows = n_rows or _measured_rows()
    table = ResultTable(
        f"Figure 7b (measured): wall-clock speedup on SYN, {n_rows:,} rows",
        notes=f"host cores: {os.cpu_count() or 1}; speedup relative to 1 worker",
    )
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=10, n_measures=5)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    base_wall: float | None = None
    baseline_selected = None
    for n_workers in worker_counts:
        config = tuned_config(store).with_(  # type: ignore[arg-type]
            n_parallel_queries=n_workers,
            use_binpacking=False,
            max_group_bys_per_query=1,
            max_aggregates_per_query=1,
        )
        seedb = SeeDB.over_table(
            syn, store=store, config=config, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
        )
        run = seedb.run_engine(
            target, k=10, strategy="sharing", pruner="none", parallelism="real"
        )
        if baseline_selected is None:
            baseline_selected = run.selected
        elif run.selected != baseline_selected:
            raise AssertionError(
                f"parallel run ({n_workers} workers) broke determinism"
            )
        if base_wall is None:
            base_wall = run.wall_seconds
        table.add(
            store=store.upper(),
            n_workers=n_workers,
            wall_s=run.wall_seconds,
            speedup=base_wall / max(run.wall_seconds, 1e-12),
            queries=run.stats.queries_issued,
        )
    return table


# --------------------------------------------------------------------------- #
# Figure 8a — combine multiple group-bys vs memory budget
# --------------------------------------------------------------------------- #


def fig8a_groupby(datasets: tuple[str, ...] = ("syn_star_10", "syn_star_100")) -> ResultTable:
    """Latency vs n_gb on SYN*-10 / SYN*-100; cliff past the budget (Fig. 8a)."""
    table = ResultTable(
        "Figure 8a: effect of combining group-bys (SYN*)",
        notes="ROW budget 10^4 groups, COL budget 10^2; latency cliffs once "
        "the estimated group count 10^p (or 100^p) crosses it",
    )
    # The group-count estimate is min(prod |a_i|, n_rows), so exposing the
    # row store's 10^4-group cliff requires more rows than the budget.
    min_rows = 120_000
    for dataset in datasets:
        spec = registry.spec(dataset)
        n_rows = max(spec.rows_by_scale[current_scale()], min_rows)
        dataset_table = registry.build(dataset, n_rows=n_rows)
        for store in ("row", "col"):
            for n_gb in range(1, 11):
                config = tuned_config(store).with_(  # type: ignore[arg-type]
                    use_binpacking=False, max_group_bys_per_query=n_gb
                )
                seedb = SeeDB.over_table(
                    dataset_table,
                    store=store,  # type: ignore[arg-type]
                    config=config,
                    buffer_pool=scaled_buffer_pool(dataset_table),
                )
                run = seedb.run_engine(
                    eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE),
                    k=5,
                    strategy="sharing",
                    pruner="none",
                )
                table.add(
                    dataset=dataset,
                    store=store.upper(),
                    n_gb=n_gb,
                    modeled_latency_s=run.modeled_latency,
                    spill_passes=run.stats.spill_passes,
                    queries=run.stats.queries_issued,
                )
    return table


# --------------------------------------------------------------------------- #
# Figure 8b — MAX_GB vs bin packing
# --------------------------------------------------------------------------- #


def fig8b_binpack(store_kinds: tuple[str, ...] = ("row", "col")) -> ResultTable:
    """Naive n_gb limits vs bin-packed grouping on SYN (Fig. 8b)."""
    table = ResultTable(
        "Figure 8b: MAX_GB vs BP bin packing (SYN)",
        notes="BP respects the memory budget, so it avoids MAX_GB's spill cliffs",
    )
    n_rows = _syn_rows()[0]
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=20, n_measures=5)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    max_gbs = [1, 2, 3, 5, 10, 20] if current_scale() != "smoke" else [1, 3, 10]
    for store in store_kinds:
        for n_gb in max_gbs:
            config = tuned_config(store).with_(  # type: ignore[arg-type]
                use_binpacking=False, max_group_bys_per_query=n_gb
            )
            seedb = SeeDB.over_table(
                syn, store=store, config=config, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
            )
            run = seedb.run_engine(target, k=10, strategy="sharing", pruner="none")
            table.add(
                store=store.upper(),
                method=f"MAX_GB({n_gb})",
                modeled_latency_s=run.modeled_latency,
                spill_passes=run.stats.spill_passes,
            )
        config = tuned_config(store).with_(use_binpacking=True)  # type: ignore[arg-type]
        seedb = SeeDB.over_table(
            syn, store=store, config=config, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
        )
        run = seedb.run_engine(target, k=10, strategy="sharing", pruner="none")
        table.add(
            store=store.upper(),
            method="BP",
            modeled_latency_s=run.modeled_latency,
            spill_passes=run.stats.spill_passes,
        )
    return table


# --------------------------------------------------------------------------- #
# Figure 9 — all sharing optimizations
# --------------------------------------------------------------------------- #


def fig9_sharing_all(store_kinds: tuple[str, ...] = ("row", "col")) -> ResultTable:
    """Speedup of SHARING over NO_OPT vs size and view count (Fig. 9a/9b)."""
    table = ResultTable(
        "Figure 9: all sharing optimizations (SYN)",
        notes="speedups up to ~40x ROW / ~6x COL, growing with size and views",
    )
    for n_rows in _syn_rows():
        syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=20, n_measures=10)
        target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
        for store in store_kinds:
            seedb = SeeDB.over_table(
                syn, store=store, buffer_pool=scaled_buffer_pool(syn)  # type: ignore[arg-type]
            )
            seedb.store.buffer_pool.clear()
            base = seedb.run_engine(target, k=10, strategy="no_opt", pruner="none")
            seedb.store.buffer_pool.clear()
            shared = seedb.run_engine(target, k=10, strategy="sharing", pruner="none")
            table.add(
                store=store.upper(),
                n_rows=n_rows,
                n_views=len(seedb.view_space()),
                no_opt_s=base.modeled_latency,
                sharing_s=shared.modeled_latency,
                speedup=base.modeled_latency / max(shared.modeled_latency, 1e-12),
            )
    return table


# --------------------------------------------------------------------------- #
# Figure 10 — utility distributions
# --------------------------------------------------------------------------- #


def fig10_utility_distribution(dataset: str) -> ResultTable:
    """Sorted true utilities with top-k cutoffs (Fig. 10a BANK / 10b DIAB)."""
    ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
    run = ctx.seedb.true_top_k(ctx.target, k=25)
    utilities = sorted(run.utilities.values(), reverse=True)
    table = ResultTable(
        f"Figure 10 ({dataset.upper()}): distribution of true view utilities",
        notes="cutoff_k = utility of the k-th best view (the vertical lines)",
    )
    for k in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25]:
        if k <= len(utilities):
            gap = utilities[k - 1] - utilities[k] if k < len(utilities) else 0.0
            table.add(k=k, cutoff_utility=utilities[k - 1], delta_k=gap)
    return table


# --------------------------------------------------------------------------- #
# Figures 11/12 — pruning result quality; Figure 13 — pruning latency
# --------------------------------------------------------------------------- #


def quality_vs_k(dataset: str, store: str = "col") -> ResultTable:
    """Accuracy and utility distance vs k for CI/MAB/NO_PRU/RANDOM.

    Reproduces Figures 11a/11b (BANK) and 12a/12b (DIAB): averages over
    shuffled runs, exactly the paper's protocol.
    """
    n_runs = _runs_for_quality()
    ks = _quality_ks()
    table = ResultTable(
        f"Figures 11/12 ({dataset.upper()}): pruning result quality",
        notes=f"averaged over {n_runs} shuffled runs; utility distance uses true utilities",
    )
    truth_ctx = BenchContext.for_dataset(dataset, store=store, scale_pool=False)  # type: ignore[arg-type]
    max_k = max(ks)
    truth_run = truth_ctx.seedb.true_top_k(truth_ctx.target, k=max_k)
    ranked_truth = [key for key, _ in sorted(truth_run.utilities.items(), key=lambda kv: -kv[1])]
    for k in ks:
        truth_keys = ranked_truth[:k]
        for pruner in ("ci", "mab", "none", "random"):
            accs, dists = [], []
            for run_index in range(n_runs):
                ctx = BenchContext.for_dataset(
                    dataset, store=store, shuffle_seed=run_index + 1  # type: ignore[arg-type]
                )
                run = ctx.cold_run(k=k, strategy="comb", pruner=pruner)
                accs.append(accuracy(run.selected, truth_keys))
                dists.append(
                    utility_distance(run.selected, truth_keys, truth_run.utilities)
                )
            table.add(
                k=k,
                pruner=pruner.upper(),
                accuracy=float(np.mean(accs)),
                utility_distance=float(np.mean(dists)),
            )
    return table


def fig13_latency_vs_k(dataset: str, store: str = "col") -> ResultTable:
    """% latency reduction of CI/MAB relative to NO_PRU, vs k (Fig. 13).

    Queries run serially within each phase here: with deep parallel batches
    a phase's latency is its single slowest query, which hides the
    query-count savings pruning delivers.  The paper likewise isolates
    pruning by reporting *relative* improvements, noting absolute latencies
    "depend closely on the exact DBMS execution techniques" (§5.4).
    """
    ks = _quality_ks()
    table = ResultTable(
        f"Figure 13 ({dataset.upper()}): pruning latency reduction vs k",
        notes="reduction relative to NO_PRU within the phased framework; "
        "serial query execution isolates the pruning effect",
    )
    config = tuned_config(store).with_(n_parallel_queries=1)  # type: ignore[arg-type]
    ctx = BenchContext.for_dataset(dataset, store=store, config=config)  # type: ignore[arg-type]
    for k in ks:
        base = ctx.cold_run(k=k, strategy="comb", pruner="none").modeled_latency
        for pruner in ("ci", "mab"):
            run = ctx.cold_run(k=k, strategy="comb", pruner=pruner)
            reduction = 100.0 * (1.0 - run.modeled_latency / max(base, 1e-12))
            table.add(
                k=k,
                pruner=pruner.upper(),
                no_pru_s=base,
                latency_s=run.modeled_latency,
                reduction_pct=reduction,
            )
    return table


# --------------------------------------------------------------------------- #
# Figure 15 — deviation metric vs expert ground truth
# --------------------------------------------------------------------------- #


def fig15_user_metric(seed: int = 3) -> ResultTable:
    """Expert heatmap ordering + ROC/AUROC on CENSUS (Fig. 15a/15b)."""
    ctx = BenchContext.for_dataset("census", store="col", scale_pool=False)
    run = ctx.seedb.true_top_k(ctx.target, k=10)
    panel = ExpertPanel.default(seed=seed)
    votes = panel.label_all(run.utilities)
    labels = consensus_labels(votes)
    ranking = [key for key, _ in sorted(run.utilities.items(), key=lambda kv: -kv[1])]
    curve = roc_curve(ranking, labels)
    table = ResultTable(
        "Figure 15 (CENSUS): deviation metric vs simulated expert ground truth",
        notes=f"AUROC={curve.auroc:.3f} (paper: 0.903); "
        f"{sum(labels.values())} of {len(labels)} views interesting (paper: 6 of 48)",
    )
    for rank, key in enumerate(ranking, start=1):
        fpr, tpr = curve.point_at_k(rank)
        table.add(
            rank=rank,
            view=f"{key[2]}({key[1]}) BY {key[0]}",
            utility=run.utilities[key],
            expert_votes=sum(votes[key]),
            interesting=labels[key],
            tpr_at_k=tpr,
            fpr_at_k=fpr,
        )
    return table


# --------------------------------------------------------------------------- #
# Table 2 — SEEDB vs MANUAL user study
# --------------------------------------------------------------------------- #


def table2_user_study(seed: int = 1) -> ResultTable:
    """Simulated 16-participant study on HOUSING and MOVIES (Table 2)."""
    rankings, utils = {}, {}
    for dataset in ("housing", "movies"):
        ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
        run = ctx.seedb.true_top_k(ctx.target, k=10)
        utils[dataset] = run.utilities
        rankings[dataset] = [
            key for key, _ in sorted(run.utilities.items(), key=lambda kv: -kv[1])
        ]
    study = run_user_study(rankings, utils, seed=seed)
    anova_marks = study.anova_bookmarks()
    anova_rate = study.anova_rate()
    table = ResultTable(
        "Table 2: bookmarking behaviour, SEEDB vs MANUAL (simulated study)",
        notes=(
            f"tool effect on bookmarks F={anova_marks.factor_a.f_statistic:.2f} "
            f"p={anova_marks.factor_a.p_value:.4f} (paper 18.609, p<0.001); "
            f"dataset effect F={anova_marks.factor_b.f_statistic:.2f} "
            f"p={anova_marks.factor_b.p_value:.3f} (paper: not significant); "
            f"tool effect on rate F={anova_rate.factor_a.f_statistic:.2f} "
            f"p={anova_rate.factor_a.p_value:.4f} (paper 10.034, p<0.01)"
        ),
    )
    for tool in ("manual", "seedb"):
        row = study.table2_row(tool)
        table.add(
            tool=row["tool"],
            total_viz=row["total_viz"],
            num_bookmarks=row["num_bookmarks"],
            bookmark_rate=row["bookmark_rate"],
        )
    return table


# --------------------------------------------------------------------------- #
# Ablations (DESIGN.md §6)
# --------------------------------------------------------------------------- #


def ablation_metrics(dataset: str = "bank") -> ResultTable:
    """Top-k overlap between EMD and the other metrics (§4.2 consistency)."""
    ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
    table = ResultTable(
        f"Ablation: distance functions on {dataset.upper()}",
        notes="overlap@10 of each metric's top-10 with EMD's top-10",
    )
    baseline: list | None = None
    for metric in ("emd", "euclidean", "js", "maxdiff", "kl"):
        seedb = SeeDB.over_table(ctx.table, store="col", metric=metric)
        run = seedb.true_top_k(ctx.target, k=10)
        if baseline is None:
            baseline = run.selected
        overlap = len(set(run.selected) & set(baseline)) / len(baseline)
        table.add(
            metric=metric,
            top1=f"{run.selected[0][2]}({run.selected[0][1]}) BY {run.selected[0][0]}",
            overlap_with_emd=overlap,
        )
    return table


def ablation_phases(dataset: str = "bank", ks: tuple[int, ...] = (5, 10)) -> ResultTable:
    """Pruning accuracy/latency vs the number of phases."""
    table = ResultTable(
        f"Ablation: phase count on {dataset.upper()} (CI pruning)",
        notes="more phases prune earlier but pay per-phase query overhead",
    )
    truth_ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
    truth = truth_ctx.seedb.true_top_k(truth_ctx.target, k=max(ks))
    ranked = [key for key, _ in sorted(truth.utilities.items(), key=lambda kv: -kv[1])]
    for n_phases in (5, 10, 20, 40):
        config = tuned_config("col").with_(n_phases=n_phases)
        for k in ks:
            ctx = BenchContext.for_dataset(dataset, store="col", config=config)
            run = ctx.cold_run(k=k, strategy="comb", pruner="ci")
            table.add(
                n_phases=n_phases,
                k=k,
                accuracy=accuracy(run.selected, ranked[:k]),
                modeled_latency_s=run.modeled_latency,
            )
    return table


def ablation_ci_delta(dataset: str = "bank", k: int = 10) -> ResultTable:
    """CI confidence parameter delta: aggressiveness vs accuracy."""
    table = ResultTable(
        f"Ablation: CI delta on {dataset.upper()}, k={k}",
        notes="smaller delta = wider intervals = safer but slower pruning",
    )
    truth_ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
    truth = truth_ctx.seedb.true_top_k(truth_ctx.target, k=k)
    for delta in (0.01, 0.05, 0.2, 0.5):
        config = tuned_config("col").with_(ci_delta=delta)
        ctx = BenchContext.for_dataset(dataset, store="col", config=config)
        run = ctx.cold_run(k=k, strategy="comb", pruner="ci")
        table.add(
            delta=delta,
            accuracy=accuracy(run.selected, truth.selected),
            modeled_latency_s=run.modeled_latency,
            final_active=run.active_per_phase[-1],
        )
    return table


def ablation_early_return(dataset: str = "diab", k: int = 10) -> ResultTable:
    """COMB vs COMB_EARLY: approximation error of the returned distributions."""
    table = ResultTable(
        f"Ablation: early result return on {dataset.upper()}, k={k}",
        notes="utility_distance measures quality loss from returning partial results",
    )
    truth_ctx = BenchContext.for_dataset(dataset, store="col", scale_pool=False)
    truth = truth_ctx.seedb.true_top_k(truth_ctx.target, k=k)
    for strategy in ("comb", "comb_early"):
        ctx = BenchContext.for_dataset(dataset, store="col")
        run = ctx.cold_run(k=k, strategy=strategy, pruner="ci")
        table.add(
            strategy=strategy.upper(),
            modeled_latency_s=run.modeled_latency,
            phases=run.phases_executed,
            accuracy=accuracy(run.selected, truth.selected),
            utility_distance=utility_distance(run.selected, truth.selected, truth.utilities),
        )
    return table


# --------------------------------------------------------------------------- #
# Execution backends — native numpy engine vs the sqlite differential oracle
# --------------------------------------------------------------------------- #


def _backend_rows(scale: str | None = None) -> int:
    return {"smoke": 5_000, "small": 50_000, "full": 500_000}[scale or current_scale()]


# --------------------------------------------------------------------------- #
# Shared-scan batch execution — the perf trajectory baseline
# --------------------------------------------------------------------------- #


def _shared_scan_rows(scale: str | None = None) -> int:
    """SYN row count for the shared-scan ablation (1M rows at full scale —
    the acceptance-criterion table)."""
    return {"smoke": 20_000, "small": 200_000, "full": 1_000_000}[
        scale or current_scale()
    ]


def bench_shared_scan_compare(
    n_rows: int | None = None,
    out_path: str | None = "BENCH_shared_scan.json",
) -> ResultTable:
    """SHARING wall-clock with the shared-scan batch path on vs off.

    Runs the SHARING strategy over an identical SYN table with
    ``EngineConfig.shared_scan`` toggled, under both dispatch modes
    (``modeled`` = serial grouping, ``real`` = thread-pool fan-out), and
    reports best-of-N wall seconds, the deterministic modeled latency, and
    total bytes charged to the buffer pool.  ``speedup`` is relative to the
    per-query path in the same dispatch mode.  Identical top-k across all
    four configurations is asserted, so the benchmark doubles as a
    bench-scale equivalence check.

    When ``out_path`` is set the measurements are also written as JSON —
    the durable entry in the repo's perf trajectory (CI uploads it as an
    artifact so future changes can diff against it).  A smaller run never
    silently clobbers a bigger committed baseline: when the file at
    ``out_path`` records more rows than this run, the result is diverted
    to a scale-suffixed sibling (e.g. ``BENCH_shared_scan.smoke.json``).
    """
    import json

    n_rows = n_rows or _shared_scan_rows()
    repeats = {"smoke": 2, "small": 3, "full": 3}[current_scale()]
    table = ResultTable(
        f"Shared-scan batch execution: on vs off on SYN, {n_rows:,} rows (SHARING)",
        notes="speedup = per-query wall / shared-scan wall within a dispatch "
        "mode; identical top-k enforced; bytes charge shared pages once",
    )
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=5, n_measures=3)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    baseline_selected = None
    results: list[dict[str, object]] = []
    for parallelism in ("modeled", "real"):
        wall_by_mode: dict[bool, float] = {}
        for shared in (False, True):
            config = tuned_config("row").with_(
                shared_scan=shared,
                use_binpacking=False,
                max_group_bys_per_query=1,
                max_aggregates_per_query=1,
            )
            seedb = SeeDB.over_table(
                syn, store="row", config=config, buffer_pool=scaled_buffer_pool(syn)
            )
            best_wall = None
            for _ in range(repeats):
                seedb.store.buffer_pool.clear()
                run = seedb.run_engine(
                    target,
                    k=10,
                    strategy="sharing",
                    pruner="none",
                    parallelism=parallelism,  # type: ignore[arg-type]
                )
                best_wall = (
                    run.wall_seconds
                    if best_wall is None
                    else min(best_wall, run.wall_seconds)
                )
            if baseline_selected is None:
                baseline_selected = run.selected
            elif run.selected != baseline_selected:
                raise AssertionError(
                    f"shared_scan={shared} ({parallelism}) changed the top-k"
                )
            wall_by_mode[shared] = best_wall
            results.append(
                dict(
                    parallelism=parallelism,
                    shared_scan=shared,
                    wall_s=best_wall,
                    modeled_latency_s=run.modeled_latency,
                    queries=run.stats.queries_issued,
                    bytes_scanned=run.stats.bytes_scanned_miss
                    + run.stats.bytes_scanned_hit,
                )
            )
        for row in results:
            if row["parallelism"] == parallelism and "speedup" not in row:
                row["speedup"] = wall_by_mode[False] / max(
                    float(row["wall_s"]), 1e-12  # type: ignore[arg-type]
                )
    for row in results:
        table.add(**row)
    if out_path:
        try:
            with open(out_path) as handle:
                existing_rows = int(json.load(handle).get("n_rows", 0))
        except (OSError, ValueError):
            existing_rows = 0
        if existing_rows > n_rows:
            root, ext = os.path.splitext(out_path)
            out_path = f"{root}.{current_scale()}{ext}"
        payload = {
            "bench": "shared_scan",
            "generated_unix": time.time(),
            "scale": current_scale(),
            "n_rows": n_rows,
            "host_cores": os.cpu_count() or 1,
            "repeats_best_of": repeats,
            "strategy": "sharing",
            "store": "row",
            "rows": results,
        }
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
    return table


# --------------------------------------------------------------------------- #
# Out-of-core streaming — chunked memmap execution under a memory budget
# --------------------------------------------------------------------------- #


def _out_of_core_rows(scale: str | None = None) -> int:
    """SYN row count for the out-of-core ablation (1M rows at full scale)."""
    return {"smoke": 20_000, "small": 200_000, "full": 1_000_000}[
        scale or current_scale()
    ]


def bench_out_of_core_compare(
    n_rows: int | None = None,
    out_path: str | None = "BENCH_out_of_core.json",
    memory_budget_bytes: int | None = None,
    data_dir: str | None = None,
) -> ResultTable:
    """SHARING on a memmap-backed chunked dataset vs the resident baseline.

    Materializes an identical SYN table as an on-disk chunk store
    (:mod:`repro.db.chunks`), opens it memory-mapped under a **memory
    budget smaller than the dataset** (default: a quarter of its physical
    bytes; override via ``memory_budget_bytes`` or the
    ``SEEDB_OOC_BUDGET_BYTES`` environment variable), and runs the SHARING
    workload on both.  The out-of-core run must return the identical top-k
    and bitwise-equal utilities — the streaming executors' contract — while
    :class:`~repro.db.chunks.ResidencyTracker` proves peak materialized
    chunk bytes stayed under the cap.  ``throughput`` is out-of-core
    wall-clock relative to fully-resident (1.0 = parity).

    When ``out_path`` is set the measurements land in the perf-trajectory
    JSON (CI uploads it); the scale-suffix sibling rule of
    ``BENCH_shared_scan.json`` applies, so a small run never clobbers a
    bigger committed baseline.
    """
    import json
    import shutil
    import tempfile

    from repro.db.chunks import open_table, write_table

    n_rows = n_rows or _out_of_core_rows()
    repeats = {"smoke": 2, "small": 3, "full": 3}[current_scale()]
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=5, n_measures=3)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    dataset_bytes = syn.physical_row_bytes() * syn.nrows
    if memory_budget_bytes is None:
        env_budget = os.environ.get("SEEDB_OOC_BUDGET_BYTES")
        memory_budget_bytes = (
            int(env_budget) if env_budget else max(dataset_bytes // 4, 1 << 16)
        )
    if memory_budget_bytes >= dataset_bytes:
        raise ValueError(
            f"memory budget {memory_budget_bytes} must be smaller than the "
            f"dataset ({dataset_bytes} bytes) for an out-of-core run"
        )
    # Several chunks per budget window so streaming genuinely engages.
    chunk_rows = max(min(n_rows // 8, 65_536), 1_024)

    table = ResultTable(
        f"Out-of-core streaming: SYN {n_rows:,} rows, "
        f"budget {memory_budget_bytes / 1e6:.1f} MB "
        f"of a {dataset_bytes / 1e6:.1f} MB dataset (SHARING)",
        notes="identical top-k + bitwise utilities enforced; peak = max "
        "simultaneously materialized chunk bytes (ResidencyTracker)",
    )
    work_dir = data_dir or tempfile.mkdtemp(prefix="seedb_ooc_")
    try:
        manifest = write_table(
            syn,
            work_dir,
            chunk_rows=chunk_rows,
            split_column=synthetic.SPLIT_COLUMN,
            target_value=synthetic.TARGET_VALUE,
        )
        chunked = open_table(work_dir, memory_budget_bytes=memory_budget_bytes)

        results: list[dict[str, object]] = []
        baseline: dict[str, object] | None = None
        for mode, source in (("resident", syn), ("out_of_core", chunked)):
            config = tuned_config("col").with_(
                memory_budget_bytes=(
                    memory_budget_bytes if mode == "out_of_core" else None
                )
            )
            seedb = SeeDB.over_table(
                source, store="col", config=config,
                buffer_pool=scaled_buffer_pool(source),
            )
            best_wall = None
            for _ in range(repeats):
                seedb.store.buffer_pool.clear()
                run = seedb.run_engine(
                    target, k=10, strategy="sharing", pruner="none"
                )
                best_wall = (
                    run.wall_seconds
                    if best_wall is None
                    else min(best_wall, run.wall_seconds)
                )
            row = dict(
                mode=mode,
                wall_s=best_wall,
                modeled_latency_s=run.modeled_latency,
                queries=run.stats.queries_issued,
                bytes_scanned=run.stats.bytes_scanned_miss
                + run.stats.bytes_scanned_hit,
            )
            if mode == "resident":
                baseline = dict(selected=run.selected, utilities=run.utilities,
                                wall=best_wall)
            else:
                assert baseline is not None
                if run.selected != baseline["selected"]:
                    raise AssertionError("out-of-core run changed the top-k")
                for key, value in baseline["utilities"].items():  # type: ignore[union-attr]
                    if run.utilities[key] != value:
                        raise AssertionError(
                            f"out-of-core utility for {key} diverged"
                        )
                tracker = chunked.residency
                assert tracker is not None
                if tracker.peak_bytes > memory_budget_bytes:
                    raise AssertionError(
                        f"peak residency {tracker.peak_bytes} exceeded the "
                        f"budget {memory_budget_bytes}"
                    )
                row["peak_resident_bytes"] = tracker.peak_bytes
                row["throughput"] = float(baseline["wall"]) / max(best_wall, 1e-12)  # type: ignore[arg-type]
            results.append(row)
        for row in results:
            table.add(**row)

        if out_path:
            try:
                with open(out_path) as handle:
                    existing_rows = int(json.load(handle).get("n_rows", 0))
            except (OSError, ValueError):
                existing_rows = 0
            if existing_rows > n_rows:
                root, ext = os.path.splitext(out_path)
                out_path = f"{root}.{current_scale()}{ext}"
            ooc_row = results[1]
            payload = {
                "bench": "out_of_core",
                "generated_unix": time.time(),
                "scale": current_scale(),
                "n_rows": n_rows,
                "host_cores": os.cpu_count() or 1,
                "repeats_best_of": repeats,
                "strategy": "sharing",
                "store": "col",
                "dataset_bytes": dataset_bytes,
                "on_disk_bytes": manifest.dataset_bytes,
                "memory_budget_bytes": memory_budget_bytes,
                "chunk_rows": chunk_rows,
                "peak_resident_bytes": ooc_row["peak_resident_bytes"],
                "throughput_vs_resident": ooc_row["throughput"],
                "rows": results,
            }
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=2)
    finally:
        if data_dir is None:
            shutil.rmtree(work_dir, ignore_errors=True)
    return table


# --------------------------------------------------------------------------- #
# Append refresh — delta-aware view maintenance on a growing chunk store
# --------------------------------------------------------------------------- #


def _append_base_rows(scale: str | None = None) -> int:
    """SYN base row count for the append-refresh bench."""
    return {"smoke": 20_000, "small": 100_000, "full": 500_000}[
        scale or current_scale()
    ]


def bench_append_refresh(
    n_rows: int | None = None,
    out_path: str | None = "BENCH_append.json",
    data_dir: str | None = None,
) -> ResultTable:
    """Refresh cost after on-disk appends: delta-scan vs full recompute.

    Materializes a SYN base table as an on-disk chunk store, runs SHARING
    once with the delta-state cache enabled (capturing every query's
    partial-aggregation snapshot), then appends 1%, 4%, and 5% batches via
    :func:`repro.db.chunks.append_rows` and times the refresh run after
    each.  Every refresh must carry-merge the cached partials and scan
    **only** the appended rows — the per-step row counts in the output
    prove it — while matching a from-scratch recompute over the extended
    store bitwise (top-k, every utility).  A repeat run after each refresh
    must be served entirely from the (never invalidated) result cache, so
    the warm hit-rate stays positive across appends.

    ``speedup`` is full-recompute wall-clock over refresh wall-clock per
    step; refresh latency itself scales with the delta size, not the
    table.  When ``out_path`` is set the measurements land in the
    perf-trajectory JSON; the scale-suffix sibling rule of
    ``BENCH_shared_scan.json`` applies.
    """
    import json
    import shutil
    import tempfile

    from repro.db.catalog import TableMeta
    from repro.db.chunks import append_rows, open_table, write_table

    n_rows = n_rows or _append_base_rows()
    # 1% / 4% / 5% batches: a 10% total extension, three refreshes.
    deltas = [max(n_rows // 100, 1), max(n_rows // 25, 1), max(n_rows // 20, 1)]
    syn = synthetic.make_syn(
        n_rows=n_rows + sum(deltas), n_dimensions=5, n_measures=3
    )
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    chunk_rows = max(min(n_rows // 8, 65_536), 1_024)

    table = ResultTable(
        f"Append refresh: SYN {n_rows:,} base rows + "
        f"{'/'.join(str(d) for d in deltas)} appended (SHARING, delta cache)",
        notes="bitwise match vs full recompute enforced per step; "
        "rows_scanned counts only appended rows on a delta-cache hit",
    )
    work_dir = data_dir or tempfile.mkdtemp(prefix="seedb_append_")
    try:
        write_table(
            syn.slice_rows(0, n_rows),
            work_dir,
            chunk_rows=chunk_rows,
            split_column=synthetic.SPLIT_COLUMN,
            target_value=synthetic.TARGET_VALUE,
        )
        chunked = open_table(work_dir)
        config = tuned_config("col").with_(result_cache=True, delta_cache=True)
        seedb = SeeDB.over_table(chunked, store="col", config=config)

        def run():
            return seedb.run_engine(target, k=10, strategy="sharing", pruner="none")

        cold = run()
        table.add(
            step="cold",
            delta_rows=0,
            n_rows=n_rows,
            wall_s=cold.wall_seconds,
            rows_scanned=cold.stats.rows_scanned,
            delta_hits=cold.stats.delta_hits,
            queries=cold.stats.queries_issued,
        )

        results: list[dict[str, object]] = []
        offset = n_rows
        column_names = [col.name for col in syn.schema]
        for delta in deltas:
            append_rows(
                work_dir,
                {
                    name: np.asarray(syn.column(name))[offset : offset + delta]
                    for name in column_names
                },
            )
            offset += delta
            chunked.refresh_from_disk()
            seedb.store.sync_layout()
            seedb.meta = TableMeta.of(chunked)

            refresh = run()
            if refresh.stats.delta_hits != refresh.stats.queries_issued:
                raise AssertionError(
                    f"refresh after +{delta} rows missed the delta cache: "
                    f"{refresh.stats.delta_hits}/{refresh.stats.queries_issued}"
                )
            if refresh.stats.rows_scanned != refresh.stats.queries_issued * delta:
                raise AssertionError(
                    f"refresh re-read base rows: scanned "
                    f"{refresh.stats.rows_scanned}, expected "
                    f"{refresh.stats.queries_issued * delta}"
                )

            # From-scratch oracle over the extended store (no caches).
            oracle_seedb = SeeDB.over_table(
                open_table(work_dir), store="col", config=tuned_config("col")
            )
            oracle = oracle_seedb.run_engine(
                target, k=10, strategy="sharing", pruner="none"
            )
            if refresh.selected != oracle.selected:
                raise AssertionError("delta refresh changed the top-k")
            for key, value in oracle.utilities.items():
                if refresh.utilities[key] != value:
                    raise AssertionError(f"delta utility for {key} diverged")

            warm = run()
            if warm.cache_hits <= 0 or warm.stats.queries_issued != 0:
                raise AssertionError(
                    "result cache went cold across the append"
                )
            row = dict(
                step=f"+{delta}",
                delta_rows=delta,
                n_rows=offset,
                wall_s=refresh.wall_seconds,
                rows_scanned=refresh.stats.rows_scanned,
                delta_hits=refresh.stats.delta_hits,
                queries=refresh.stats.queries_issued,
                recompute_wall_s=oracle.wall_seconds,
                speedup=oracle.wall_seconds / max(refresh.wall_seconds, 1e-12),
                warm_cache_hits=warm.cache_hits,
            )
            results.append(row)
            table.add(**row)

        if out_path:
            try:
                with open(out_path) as handle:
                    existing_rows = int(json.load(handle).get("n_rows", 0))
            except (OSError, ValueError):
                existing_rows = 0
            if existing_rows > n_rows:
                root, ext = os.path.splitext(out_path)
                out_path = f"{root}.{current_scale()}{ext}"
            payload = {
                "bench": "append",
                "generated_unix": time.time(),
                "scale": current_scale(),
                "n_rows": n_rows,
                "host_cores": os.cpu_count() or 1,
                "strategy": "sharing",
                "store": "col",
                "chunk_rows": chunk_rows,
                "delta_rows": deltas,
                "cold_wall_s": cold.wall_seconds,
                "warm_hit_rate_positive": all(
                    row["warm_cache_hits"] > 0 for row in results  # type: ignore[operator]
                ),
                "rows": results,
            }
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=2)
    finally:
        if data_dir is None:
            shutil.rmtree(work_dir, ignore_errors=True)
    return table


# --------------------------------------------------------------------------- #
# Service throughput — the serving layer + cross-session result cache
# --------------------------------------------------------------------------- #


def _service_sessions(scale: str | None = None) -> int:
    return {"smoke": 6, "small": 10, "full": 16}[scale or current_scale()]


def _service_concurrency(scale: str | None = None) -> int:
    return {"smoke": 4, "small": 4, "full": 8}[scale or current_scale()]


def _replay_drilldown(
    address: tuple[str, int], dataset: str, n_steps: int, k: int, seed: int
) -> list[list[tuple[str, str, str]]]:
    """Replay one simulated drill-down session over HTTP.

    Uses one :class:`~repro.service.client.ServiceClient` — one persistent
    keep-alive connection — for the whole session (an analyst UI holds its
    connection open), and returns the per-step ranked view keys so the
    caller can check that every session — and both cache modes —
    recommended identical views.
    """
    from repro.data import registry as data_registry
    from repro.service.client import ServiceClient
    from repro.service.sessions import AnalystDrillDown

    with ServiceClient(*address) as client:
        spec = data_registry.spec(dataset)
        session = client.create_session(dataset=dataset)
        analyst = AnalystDrillDown(
            [(spec.split_column, spec.target_value)], k=k, n_steps=n_steps, seed=seed
        )
        request = analyst.first_request()
        per_step: list[list[tuple[str, str, str]]] = []
        while request is not None:
            response = client.recommend_raw(session.session_id, request)
            per_step.append(
                [(v["dimension"], v["measure"], v["func"]) for v in response["views"]]
            )
            request = analyst.next_request(response)
        return per_step


def bench_service_throughput(
    dataset: str = "diab",
    n_steps: int = 3,
    k: int = 5,
    n_sessions: int | None = None,
    concurrency: int | None = None,
    out_path: str | None = "BENCH_service.json",
) -> ResultTable:
    """Requests/sec of the recommendation service, result cache on vs off.

    The workload is the serving layer's bread and butter: ``n_sessions``
    analysts concurrently replay the *same* three-step drill-down script
    (create session, recommend, drill into the top deviation, repeat) over
    real HTTP against an in-process
    :class:`~repro.service.server.SeeDBHTTPServer`.  One untimed warm-up
    session runs first in both modes (it loads the dataset engine and, in
    cache mode, fills the cache — steady-state throughput is what a
    serving benchmark measures); the timed phase then counts recommend
    requests per wall second.  Every session in both modes must recommend
    identical top-k views at every step, so the speedup is apples-to-
    apples.

    DIAB is the default dataset — at 100K+ rows (small/full scale) it is
    the largest scale-stable real dataset, so per-request execution work
    dominates the HTTP/JSON envelope and the cache's effect is measured
    cleanly (CENSUS, the examples' demo dataset, is only 21K rows).

    When ``out_path`` is set the measurements land in ``BENCH_service.json``
    (CI uploads it as an artifact).  Like the shared-scan baseline, a run
    over fewer rows than an existing committed file diverts to a
    scale-suffixed sibling instead of clobbering it.
    """
    import json
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import RecommendationService, start_server

    n_sessions = n_sessions or _service_sessions()
    concurrency = concurrency or _service_concurrency()
    table = ResultTable(
        f"Service throughput on {dataset.upper()}: cross-session result cache "
        f"on vs off ({n_sessions} sessions x {n_steps} steps, "
        f"{concurrency} concurrent)",
        notes="speedup = recommend requests/sec relative to cache-off; "
        "identical per-step top-k across sessions and modes enforced",
    )
    results: list[dict[str, object]] = []
    reference_steps: list[list[tuple[str, str, str]]] | None = None
    n_rows = 0
    for cache_on in (False, True):
        service = RecommendationService(
            datasets=(dataset,), result_cache=cache_on
        )
        server, _ = start_server(service)
        address = server.server_address[:2]
        try:
            warm_steps = _replay_drilldown(address, dataset, n_steps, k, seed=1)
            n_rows = service.engine(
                dataset, service.default_store, service.default_metric
            ).table.nrows
            before = service.cache.snapshot() if service.cache else None
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                futures = [
                    pool.submit(_replay_drilldown, address, dataset, n_steps, k, 1)
                    for _ in range(n_sessions)
                ]
                sessions_steps = [future.result() for future in futures]
            wall = time.perf_counter() - started
            after = service.cache.snapshot() if service.cache else None
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        for steps in sessions_steps:
            if steps != warm_steps:
                raise AssertionError(
                    f"cache_on={cache_on}: a session diverged from the warm-up"
                )
        if reference_steps is None:
            reference_steps = warm_steps
        elif warm_steps != reference_steps:
            raise AssertionError("cache on/off disagreed on recommended views")
        requests = n_sessions * n_steps
        hits = (after.hits - before.hits) if after and before else 0
        misses = (after.misses - before.misses) if after and before else 0
        lookups = hits + misses
        results.append(
            dict(
                result_cache=cache_on,
                sessions=n_sessions,
                steps_per_session=n_steps,
                requests=requests,
                wall_s=wall,
                rps=requests / max(wall, 1e-12),
                cache_hits=hits,
                cache_misses=misses,
                hit_rate=hits / lookups if lookups else 0.0,
                bytes_saved=(after.bytes_saved - before.bytes_saved)
                if after and before
                else 0,
            )
        )
    off_rps = float(results[0]["rps"])  # type: ignore[arg-type]
    for row in results:
        row["speedup"] = float(row["rps"]) / max(off_rps, 1e-12)  # type: ignore[arg-type]
        table.add(**row)
    if out_path:
        try:
            with open(out_path) as handle:
                existing_rows = int(json.load(handle).get("n_rows", 0))
        except (OSError, ValueError):
            existing_rows = 0
        if existing_rows > n_rows:
            root, ext = os.path.splitext(out_path)
            out_path = f"{root}.{current_scale()}{ext}"
        payload = {
            "bench": "service_throughput",
            "generated_unix": time.time(),
            "scale": current_scale(),
            "dataset": dataset,
            "n_rows": n_rows,
            "n_sessions": n_sessions,
            "n_steps": n_steps,
            "k": k,
            "concurrency": concurrency,
            "host_cores": os.cpu_count() or 1,
            "identical_topk": True,
            "rows": results,
        }
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
    return table


# --------------------------------------------------------------------------- #
# Load ramp — single process vs sharded multi-worker front-end
# --------------------------------------------------------------------------- #


def _load_levels(scale: str | None = None) -> tuple[int, ...]:
    return {"smoke": (1, 2, 4), "small": (1, 4, 8), "full": (2, 8, 16)}[
        scale or current_scale()
    ]


def _load_sessions(scale: str | None = None) -> int:
    return {"smoke": 6, "small": 12, "full": 24}[scale or current_scale()]


def _spread_datasets(n_workers: int) -> tuple[str, ...]:
    """Pick benchmark datasets that cover every front-end shard.

    The front-end routes whole datasets to workers by consistent hashing,
    so a single-dataset workload would land on one worker and measure
    nothing but proxy overhead.  Walk a candidate list (heaviest first —
    the synthetic tables scale with ``SEEDB_SCALE`` and carry the largest
    view spaces) and keep the first dataset seen for each distinct
    worker; the ring is deterministic, so the choice is reproducible.
    """
    from repro.service.frontend import HashRing

    candidates = ("syn", "syn_star_100", "diab", "census", "bank", "movies")
    ring = HashRing(n_workers)
    chosen: list[str] = []
    covered: set[int] = set()
    for name in candidates:
        worker = ring.lookup(name)
        if worker not in covered:
            chosen.append(name)
            covered.add(worker)
        if len(covered) >= n_workers:
            break
    return tuple(chosen)


def _weighted_session_mix(
    costs: Mapping[str, float], total_sessions: int
) -> dict[str, int]:
    """Sessions per dataset, inversely proportional to per-request cost.

    Datasets differ by an order of magnitude in per-request execution
    cost, and each dataset is pinned to one front-end shard — unweighted
    round-robin would leave cheap shards idle while one shard carries the
    whole ramp.  Inverse-cost weighting (largest-remainder rounding, at
    least one session each) gives every shard comparable offered work, so
    the ramp measures scale-out rather than the skew of the dataset mix.
    """
    weights = {name: 1.0 / max(cost, 1e-9) for name, cost in costs.items()}
    scale = total_sessions / sum(weights.values())
    raw = {name: weight * scale for name, weight in weights.items()}
    counts = {name: max(1, int(raw[name])) for name in raw}
    while sum(counts.values()) < total_sessions:
        name = max(raw, key=lambda n: raw[n] - counts[n])
        counts[name] += 1
    while sum(counts.values()) > total_sessions:
        eligible = [n for n in counts if counts[n] > 1]
        if not eligible:
            break
        name = max(eligible, key=lambda n: counts[n] - raw[n])
        counts[name] -= 1
    return counts


def _interleaved_order(counts: Mapping[str, int]) -> list[str]:
    """Deficit-round-robin submission order for a weighted session mix.

    Spreads each dataset's sessions evenly through the list so that at
    any closed-loop concurrency the in-flight mix matches the overall
    mix (a sorted order would run the shards one after another).
    """
    remaining = dict(counts)
    credit = {name: 0.0 for name in counts}
    total = sum(counts.values())
    order: list[str] = []
    for _ in range(total):
        for name in credit:
            if remaining[name]:
                credit[name] += counts[name] / total
        name = max(
            (n for n in counts if remaining[n]), key=lambda n: (credit[n], n)
        )
        order.append(name)
        credit[name] -= 1.0
        remaining[name] -= 1
    return order


def _timed_drilldown(
    address: tuple[str, int], dataset: str, n_steps: int, k: int, seed: int
) -> list[float]:
    """Replay one drill-down session; return per-request latencies (s)."""
    from repro.data import registry as data_registry
    from repro.service.client import ServiceClient
    from repro.service.sessions import AnalystDrillDown

    with ServiceClient(*address) as client:
        spec = data_registry.spec(dataset)
        session = client.create_session(dataset=dataset)
        analyst = AnalystDrillDown(
            [(spec.split_column, spec.target_value)], k=k, n_steps=n_steps, seed=seed
        )
        request = analyst.first_request()
        latencies: list[float] = []
        while request is not None:
            started = time.perf_counter()
            response = client.recommend_raw(session.session_id, request)
            latencies.append(time.perf_counter() - started)
            request = analyst.next_request(response)
        return latencies


def _latency_percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _fetch_routes(address: tuple[str, int]) -> dict[str, object]:
    """The server's per-route latency-histogram block (``/v1/stats``).

    Against the sharded front-end this is already merged across workers
    (:func:`repro.service.monitor.merge_route_payloads`).
    """
    from repro.service.client import ServiceClient

    with ServiceClient(*address) as client:
        routes = client.stats().get("routes")
        return dict(routes) if isinstance(routes, dict) else {}


def bench_load(
    n_workers: int = 2,
    n_steps: int = 3,
    k: int = 5,
    datasets: tuple[str, ...] | None = None,
    concurrency_levels: tuple[int, ...] | None = None,
    sessions_per_level: int | None = None,
    out_path: str | None = "BENCH_load.json",
) -> ResultTable:
    """Closed-loop load ramp: single-process service vs sharded front-end.

    Each topology serves the same workload — ``sessions_per_level``
    concurrent drill-down sessions over datasets that cover every
    front-end shard — at each closed-loop concurrency level (every
    client thread replays whole sessions back-to-back; no open-loop
    arrival process).  Per-request latencies give p50/p99 at each level;
    the saturation RPS of a topology is its best level.  Per-process
    CPU%/RSS comes from :class:`~repro.service.monitor.ProcessMonitor`
    (primed before each measured level).

    The result cache is OFF in both topologies: the ramp measures how far
    process sharding scales *execution*, not how well the cache absorbs
    repeats (``bench_service_throughput`` covers that).  The single
    topology runs one in-process ``SeeDBHTTPServer`` (GIL-bound threads);
    the sharded topology runs ``n_workers`` service processes behind the
    consistent-hashing front-end, which adds one proxy hop per request.

    Because datasets differ wildly in per-request cost and each dataset
    pins to one shard, the warm-up doubles as a calibration pass: both
    topologies then serve the *same* inverse-cost-weighted session mix
    (see :func:`_weighted_session_mix`), so every shard receives
    comparable offered work.

    When ``out_path`` is set the trajectory lands in ``BENCH_load.json``
    with the same scale-divert rule as the other committed baselines.
    """
    import json
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import RecommendationService, start_frontend, start_server
    from repro.service.monitor import ProcessMonitor

    levels = tuple(concurrency_levels or _load_levels())
    sessions_per_level = sessions_per_level or _load_sessions()
    datasets = tuple(datasets or _spread_datasets(n_workers))
    table = ResultTable(
        f"Load ramp over {', '.join(d.upper() for d in datasets)}: "
        f"single process vs {n_workers}-worker front-end "
        f"({sessions_per_level} sessions x {n_steps} steps per level, "
        f"cache off)",
        notes="closed-loop; saturation RPS = best level per topology; "
        "cpu/rss summed over that topology's processes",
    )
    all_rows: list[dict[str, object]] = []
    peak_samples: dict[str, list[dict[str, object]]] = {}
    session_order: list[str] = []
    costs_ms: dict[str, float] = {}

    def warm(address: tuple[str, int]) -> dict[str, float]:
        """One untimed session per dataset; returns mean request cost (s).

        Builds each shard's engine before the measured ramp and supplies
        the per-dataset calibration the weighted session mix is based on.
        """
        costs: dict[str, float] = {}
        for dataset in datasets:
            latencies = _timed_drilldown(address, dataset, n_steps, k, seed=1)
            costs[dataset] = sum(latencies) / max(len(latencies), 1)
        return costs

    def run_topology(
        name: str, workers: int, address: tuple[str, int], pids: list[int]
    ) -> None:
        monitor = ProcessMonitor(pids)
        samples: list = []
        for level in levels:
            monitor.sample()  # prime the CPU delta for this level
            latencies: list[float] = []
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=level) as pool:
                futures = [
                    pool.submit(_timed_drilldown, address, dataset, n_steps, k, 1)
                    for dataset in session_order
                ]
                for future in futures:
                    latencies.extend(future.result())
            wall = time.perf_counter() - started
            samples = monitor.sample()
            latencies.sort()
            all_rows.append(
                dict(
                    topology=name,
                    workers=workers,
                    concurrency=level,
                    sessions=len(session_order),
                    requests=len(latencies),
                    wall_s=wall,
                    rps=len(latencies) / max(wall, 1e-12),
                    p50_ms=1e3 * _latency_percentile(latencies, 0.50),
                    p99_ms=1e3 * _latency_percentile(latencies, 0.99),
                    cpu_percent=round(sum(s.cpu_percent for s in samples), 1),
                    rss_mib=round(
                        sum(s.rss_bytes for s in samples) / 2**20, 1
                    ),
                )
            )
        peak_samples[name] = [s.as_dict() for s in samples]

    # Topology 1: one process, one ThreadingHTTPServer (the PR-4 service).
    service = RecommendationService(datasets=datasets, result_cache=False)
    server, _ = start_server(service)
    try:
        address = server.server_address[:2]
        costs = warm(address)
        costs_ms = {name: round(1e3 * cost, 1) for name, cost in costs.items()}
        session_mix = _weighted_session_mix(costs, sessions_per_level)
        session_order = _interleaved_order(session_mix)
        run_topology("single", 1, address, [os.getpid()])
        route_latency = {"single": _fetch_routes(address)}
        n_rows = sum(
            service.engine(
                name, service.default_store, service.default_metric
            ).table.nrows
            for name in datasets
        )
    finally:
        server.graceful_shutdown(timeout=30)
        service.close()

    # Topology 2: n_workers service processes behind the hash-ring router,
    # serving the exact same weighted session mix.
    frontend, _ = start_frontend(
        n_workers=n_workers,
        service_kwargs=dict(datasets=datasets, result_cache=False),
    )
    shards = {
        name: frontend.worker_for_dataset(name).index for name in datasets
    }
    try:
        pids = [os.getpid()] + [w.pid for w in frontend.workers]
        warm(frontend.server_address[:2])
        run_topology("frontend", n_workers, frontend.server_address[:2], pids)
        route_latency["frontend"] = _fetch_routes(frontend.server_address[:2])
    finally:
        frontend.graceful_shutdown(timeout=30)

    saturation: dict[str, dict[str, object]] = {}
    for row in all_rows:
        table.add(**row)
        topology = str(row["topology"])
        best = saturation.get(topology)
        if best is None or float(row["rps"]) > float(best["rps"]):  # type: ignore[arg-type]
            saturation[topology] = {
                "rps": float(row["rps"]),  # type: ignore[arg-type]
                "concurrency": row["concurrency"],
                "p50_ms": row["p50_ms"],
                "p99_ms": row["p99_ms"],
            }
    speedup = float(saturation["frontend"]["rps"]) / max(  # type: ignore[arg-type]
        float(saturation["single"]["rps"]), 1e-12  # type: ignore[arg-type]
    )
    if out_path:
        try:
            with open(out_path) as handle:
                existing_rows = int(json.load(handle).get("n_rows", 0))
        except (OSError, ValueError):
            existing_rows = 0
        if existing_rows > n_rows:
            root, ext = os.path.splitext(out_path)
            out_path = f"{root}.{current_scale()}{ext}"
        payload = {
            "bench": "load",
            "generated_unix": time.time(),
            "scale": current_scale(),
            "datasets": list(datasets),
            "shards": shards,
            "session_mix": session_mix,
            "calibrated_cost_ms": costs_ms,
            "n_rows": n_rows,
            "n_steps": n_steps,
            "k": k,
            "n_workers": n_workers,
            "concurrency_levels": list(levels),
            "sessions_per_level": sessions_per_level,
            "host_cores": os.cpu_count() or 1,
            "saturation": saturation,
            "frontend_speedup": speedup,
            "process_samples": peak_samples,
            "route_latency": route_latency,
            "rows": all_rows,
        }
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
    return table


# --------------------------------------------------------------------------- #
# Cross-request coalescing — shared scans + single-flight under concurrency
# --------------------------------------------------------------------------- #


def _coalesce_sessions(scale: str | None = None) -> int:
    return {"smoke": 4, "small": 8, "full": 16}[scale or current_scale()]


def _traced_drilldown(
    address: tuple[str, int],
    dataset: str,
    n_steps: int,
    k: int,
    seed: int,
    barrier: "threading.Barrier | None" = None,
) -> tuple[list[dict[str, object]], list[float]]:
    """Replay one drill-down session, recording every request/response pair.

    Returns ``(trace, latencies)`` where each trace entry keeps the raw
    request payload (for the differential-oracle serial replay) and the
    response fields that must be bitwise identical across execution paths
    (target, k, and the ranked views with their utilities).  ``barrier``
    aligns the *first* request of every concurrent session so identical
    opening steps genuinely race into the coalescing window.
    """
    from repro.data import registry as data_registry
    from repro.service.client import ServiceClient
    from repro.service.sessions import AnalystDrillDown

    with ServiceClient(*address) as client:
        spec = data_registry.spec(dataset)
        session = client.create_session(dataset=dataset)
        analyst = AnalystDrillDown(
            [(spec.split_column, spec.target_value)],
            k=k,
            n_steps=n_steps,
            seed=seed,
        )
        request = analyst.first_request()
        if barrier is not None:
            barrier.wait(timeout=300)
        trace: list[dict[str, object]] = []
        latencies: list[float] = []
        while request is not None:
            started = time.perf_counter()
            response = client.recommend_raw(session.session_id, request)
            latencies.append(time.perf_counter() - started)
            trace.append(
                {
                    "request": request,
                    "target": response["target"],
                    "k": response["k"],
                    "views": response["views"],
                }
            )
            request = analyst.next_request(response)
        return trace, latencies


def bench_coalesce(
    dataset: str = "census",
    n_sessions: int | None = None,
    n_steps: int = 3,
    k: int = 5,
    max_wait_ms: float = 50.0,
    out_path: str | None = "BENCH_coalesce.json",
) -> ResultTable:
    """Cross-request coalescing: off vs union batching vs + single-flight.

    Three legs serve the *same* closed-loop concurrent workload —
    ``n_sessions`` analyst drill-down sessions over one dataset, each
    starting from the identical default-target step (the thundering-herd
    shape) and then diverging along seeded per-session drill-downs — on a
    fresh cache-off service per leg:

    * ``off`` — the direct path (gateway never constructed);
    * ``coalesce`` — union batching only (``singleflight=False``):
      concurrent requests co-batch into one shared scan per window, with
      identical queries deduplicated inside the union;
    * ``coalesce+singleflight`` — identical concurrent requests
      additionally collapse onto one in-flight execution.

    Executed work is read from the engines' lifetime ``executed``
    counters (each physical execution counted exactly once, however many
    requests shared it), so single-flight shares cannot inflate the
    numbers.  The bench *asserts* the acceptance criteria: every leg's
    per-request targets/top-k/utilities are bitwise identical, a serial
    replay of the coalesced leg's exact requests on an uncoalesced
    service (the differential oracle) reproduces them bitwise, and both
    coalescing legs execute strictly fewer queries, rows, and bytes than
    ``off`` at equal concurrency.
    """
    import json
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.config import CoalesceConfig
    from repro.service import RecommendationService, start_server

    n_sessions = n_sessions or _coalesce_sessions()
    table = ResultTable(
        f"Cross-request coalescing on {dataset.upper()}: {n_sessions} "
        f"concurrent sessions x {n_steps} steps (cache off)",
        notes="executed counters charge each physical execution once; "
        "identical results asserted bitwise across legs + serial oracle",
    )
    n_rows = 0

    def run_leg(
        name: str, coalesce: "CoalesceConfig | bool"
    ) -> dict[str, object]:
        nonlocal n_rows
        service = RecommendationService(
            datasets=(dataset,), result_cache=False, coalesce=coalesce
        )
        server, _ = start_server(service)
        try:
            address = server.server_address[:2]
            # Build the engine outside the measured window.
            service.engine(
                dataset, service.default_store, service.default_metric
            )
            n_rows = service.engine(
                dataset, service.default_store, service.default_metric
            ).table.nrows
            barrier = threading.Barrier(n_sessions)
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=n_sessions) as pool:
                futures = [
                    pool.submit(
                        _traced_drilldown,
                        address, dataset, n_steps, k, seed + 1, barrier,
                    )
                    for seed in range(n_sessions)
                ]
                results = [future.result() for future in futures]
            wall = time.perf_counter() - started
            stats = service.stats()
            latencies = sorted(
                latency for _, session_latencies in results
                for latency in session_latencies
            )
            return {
                "name": name,
                "traces": [trace for trace, _ in results],
                "wall_s": wall,
                "requests": len(latencies),
                "rps": len(latencies) / max(wall, 1e-12),
                "p50_ms": 1e3 * _latency_percentile(latencies, 0.50),
                "p99_ms": 1e3 * _latency_percentile(latencies, 0.99),
                "executed": dict(stats["executed"]),  # type: ignore[arg-type]
                "coalesce": stats.get("coalesce"),
            }
        finally:
            server.graceful_shutdown(timeout=30)
            service.close()

    legs = [
        run_leg("off", False),
        run_leg(
            "coalesce",
            CoalesceConfig(
                enabled=True,
                max_batch_size=n_sessions,
                max_wait_ms=max_wait_ms,
                singleflight=False,
            ),
        ),
        run_leg(
            "coalesce+singleflight",
            CoalesceConfig(
                enabled=True,
                max_batch_size=n_sessions,
                max_wait_ms=max_wait_ms,
                singleflight=True,
            ),
        ),
    ]

    # Bitwise identity across legs: same targets, same top-k, same utilities
    # for every (session, step) — coalescing only moves the accounting.
    baseline = legs[0]
    for leg in legs[1:]:
        assert leg["traces"] == baseline["traces"], (
            f"leg {leg['name']!r} diverged from the uncoalesced results"
        )

    # Differential oracle: serially replay the coalesced leg's exact
    # requests on a fresh uncoalesced service and compare bitwise.
    oracle_service = RecommendationService(
        datasets=(dataset,), result_cache=False
    )
    oracle_server, _ = start_server(oracle_service)
    try:
        from repro.service.client import ServiceClient

        oracle_address = oracle_server.server_address[:2]
        for trace in legs[2]["traces"]:  # type: ignore[union-attr]
            with ServiceClient(*oracle_address) as client:
                session = client.create_session(dataset=dataset)
                for step in trace:  # type: ignore[union-attr]
                    response = client.recommend_raw(
                        session.session_id, step["request"]
                    )
                    observed = {
                        "request": step["request"],
                        "target": response["target"],
                        "k": response["k"],
                        "views": response["views"],
                    }
                    assert observed == step, (
                        "serial oracle diverged from coalesced results"
                    )
    finally:
        oracle_server.graceful_shutdown(timeout=30)
        oracle_service.close()

    # Strictly less physical work with coalescing on, at equal concurrency.
    reductions: dict[str, dict[str, float]] = {}
    off_executed = baseline["executed"]
    for leg in legs[1:]:
        executed = leg["executed"]
        for counter in ("queries_executed", "rows_scanned", "bytes_scanned"):
            assert executed[counter] < off_executed[counter], (  # type: ignore[index]
                f"leg {leg['name']!r}: {counter} not reduced "
                f"({executed[counter]} vs {off_executed[counter]})"  # type: ignore[index]
            )
        reductions[str(leg["name"])] = {
            counter: round(
                100.0 * (1.0 - executed[counter] / off_executed[counter]), 1  # type: ignore[index,operator]
            )
            for counter in ("queries_executed", "rows_scanned", "bytes_scanned")
        }

    for leg in legs:
        block = leg["coalesce"] or {}
        table.add(
            leg=leg["name"],
            requests=leg["requests"],
            wall_s=round(float(leg["wall_s"]), 3),  # type: ignore[arg-type]
            rps=round(float(leg["rps"]), 1),  # type: ignore[arg-type]
            p50_ms=round(float(leg["p50_ms"]), 1),  # type: ignore[arg-type]
            p99_ms=round(float(leg["p99_ms"]), 1),  # type: ignore[arg-type]
            queries=leg["executed"]["queries_executed"],  # type: ignore[index]
            rows_scanned=leg["executed"]["rows_scanned"],  # type: ignore[index]
            mib_scanned=round(
                leg["executed"]["bytes_scanned"] / 2**20, 1  # type: ignore[index,operator]
            ),
            batches=block.get("batches", 0),  # type: ignore[union-attr]
            coalesced=block.get("requests_coalesced", 0),  # type: ignore[union-attr]
            sf_hits=block.get("singleflight_hits", 0),  # type: ignore[union-attr]
            occ_mean=round(
                float(block.get("window_occupancy_mean", 0.0)), 2  # type: ignore[arg-type,union-attr]
            ),
        )

    if out_path:
        try:
            with open(out_path) as handle:
                existing_rows = int(json.load(handle).get("n_rows", 0))
        except (OSError, ValueError):
            existing_rows = 0
        if existing_rows > n_rows:
            root, ext = os.path.splitext(out_path)
            out_path = f"{root}.{current_scale()}{ext}"
        payload = {
            "bench": "coalesce",
            "generated_unix": time.time(),
            "scale": current_scale(),
            "dataset": dataset,
            "n_rows": n_rows,
            "n_sessions": n_sessions,
            "n_steps": n_steps,
            "k": k,
            "max_wait_ms": max_wait_ms,
            "host_cores": os.cpu_count() or 1,
            "bitwise_identical": True,
            "oracle_matches": True,
            "reductions_pct": reductions,
            "legs": {
                str(leg["name"]): {
                    "requests": leg["requests"],
                    "wall_s": leg["wall_s"],
                    "rps": leg["rps"],
                    "p50_ms": leg["p50_ms"],
                    "p99_ms": leg["p99_ms"],
                    "executed": leg["executed"],
                    "coalesce": leg["coalesce"],
                }
                for leg in legs
            },
        }
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
    return table


# --------------------------------------------------------------------------- #
# Chaos — worker kill under load: recovery time, error window, warm cache
# --------------------------------------------------------------------------- #


def _chaos_sessions(scale: str | None = None) -> int:
    return {"smoke": 4, "small": 8, "full": 16}[scale or current_scale()]


def _resilient_drilldown(
    address: tuple[str, int], dataset: str, n_steps: int, k: int, seed: int
) -> tuple[list[tuple[float, float]], int]:
    """One drill-down session through a *retrying* client.

    Returns ``(samples, failures)`` where each sample is
    ``(perf_counter at completion, latency seconds)`` — the completion
    stamps let the caller attribute requests to the fault window — and
    ``failures`` counts requests that errored even after retries (the
    bench's "non-retryable errors observed by clients" figure, which the
    acceptance criteria require to be zero).
    """
    from repro.data import registry as data_registry
    from repro.exceptions import ServiceError
    from repro.service.client import ServiceClient
    from repro.service.sessions import AnalystDrillDown

    samples: list[tuple[float, float]] = []
    failures = 0
    with ServiceClient(*address, retries=6, backoff=0.1) as client:
        spec = data_registry.spec(dataset)
        try:
            session = client.create_session(dataset=dataset)
        except (ServiceError, ConnectionError, OSError):
            return samples, 1
        analyst = AnalystDrillDown(
            [(spec.split_column, spec.target_value)], k=k, n_steps=n_steps, seed=seed
        )
        request = analyst.first_request()
        while request is not None:
            started = time.perf_counter()
            try:
                response = client.recommend_raw(
                    session.session_id, request, idempotent=True
                )
            except (ServiceError, ConnectionError, OSError):
                failures += 1
                break
            samples.append((time.perf_counter(), time.perf_counter() - started))
            request = analyst.next_request(response)
    return samples, failures


def bench_chaos(
    n_workers: int = 2,
    n_steps: int = 3,
    k: int = 5,
    dataset: str = "census",
    load_threads: int = 2,
    n_sessions: int | None = None,
    restart_backoff: float = 0.2,
    out_path: str | None = "BENCH_chaos.json",
) -> ResultTable:
    """Kill the busiest worker mid-load; measure what the clients saw.

    A supervised ``n_workers`` front-end serves closed-loop drill-down
    sessions over one dataset (pinned by the hash ring to one worker — the
    *victim*).  A seeded :mod:`repro.testing.faults` rule arms the victim
    to ``os._exit`` on an early load-phase recommend; the cross-process
    ledger caps it at one kill fleet-wide, so the respawned worker
    inherits the same spec but does not re-die.  Three phases land in the
    table:

    * **warm** — untimed-fault baseline: one session that also populates
      the shared L2 tier the respawned worker must inherit;
    * **chaos** — the measured load run during which the kill fires;
      retrying clients must finish every session with zero failures;
    * **recovered** — the warm session replayed after the slot is
      readmitted, pinned (by ring preference) to the *respawned* process.

    The JSON payload adds the recovery timeline (death → slot readmitted,
    measured by a 5 ms poller), the error window (requests completed and
    worst latency while the slot was down, plus front-end 5xx deltas), and
    warm-cache survival (the respawned worker's L2 hit count — its L1
    died with the old process, so every hit proves the file tier carried
    the state across the crash).
    """
    import json
    import tempfile
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import start_frontend
    from repro.service.frontend import HashRing
    from repro.service.monitor import ProcessMonitor
    from repro.testing import faults

    n_sessions = n_sessions or _chaos_sessions()
    n_rows = registry.spec(dataset).rows_by_scale[current_scale()]
    victim = HashRing(n_workers).lookup(dataset)
    ledger_path = os.path.join(
        tempfile.mkdtemp(prefix="seedb-chaos-"), "faults.state"
    )
    # Arm before boot: spawned workers inherit the spec via the environment.
    # The warm phase contributes 1 create + n_steps recommends + 1 stats
    # fan-out to the victim, so ``after`` clears it and the kill lands on an
    # early load-phase recommend.
    saved_env = {
        key: os.environ.get(key) for key in (faults.ENV_SPEC, faults.ENV_STATE)
    }
    os.environ[faults.ENV_SPEC] = (
        f"kill_worker:on=worker-{victim},route=recommend,"
        f"after={n_steps + 4},times=1"
    )
    os.environ[faults.ENV_STATE] = ledger_path

    table = ResultTable(
        f"Chaos: kill worker {victim}/{n_workers} mid-load over "
        f"{dataset.upper()} ({n_sessions} sessions x {n_steps} steps, "
        f"{load_threads} client threads)",
        notes="seeded kill_worker fault, ledger-capped at one firing; "
        "failures = client-visible errors after retries (must be 0)",
    )
    monitor = ProcessMonitor([os.getpid()])
    timeline: dict[str, float | int | None] = {
        "death": None,
        "readmitted": None,
        "generation": None,
    }
    stop_watch = threading.Event()

    frontend, _ = start_frontend(
        n_workers=n_workers,
        service_kwargs=dict(datasets=(dataset,)),
        restart_backoff=restart_backoff,
        supervisor_poll=0.05,
        on_worker_respawn=lambda handle: monitor.track(handle.pid),
    )

    def watch() -> None:
        """Poll the victim slot; stamp death and readmission times."""
        while not stop_watch.is_set():
            handle = frontend.workers[victim]
            if timeline["death"] is None and not handle.alive:
                timeline["death"] = time.perf_counter()
            if timeline["death"] is not None:
                if frontend.slot_up(victim) and handle.generation > 0:
                    timeline["readmitted"] = time.perf_counter()
                    timeline["generation"] = handle.generation
                    return
            time.sleep(0.005)

    try:
        for worker in frontend.workers:
            monitor.track(worker.pid)
        monitor.sample()  # prime CPU deltas
        address = frontend.server_address[:2]
        doomed_pid = frontend.workers[victim].pid

        # Phase 1: warm. Builds the victim's engine and seeds the shared L2.
        warm_started = time.perf_counter()
        warm_latencies = sorted(
            _timed_drilldown(address, dataset, n_steps, k, seed=1)
        )
        warm_wall = time.perf_counter() - warm_started
        pre_stats = frontend.aggregate_stats()

        # Phase 2: chaos. The kill fires inside this closed-loop run.
        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        chaos_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=load_threads) as pool:
            futures = [
                pool.submit(
                    _resilient_drilldown, address, dataset, n_steps, k, seed
                )
                for seed in range(2, 2 + n_sessions)
            ]
            outcomes = [future.result() for future in futures]
        chaos_wall = time.perf_counter() - chaos_started
        chaos_samples = [s for samples, _ in outcomes for s in samples]
        chaos_failures = sum(failures for _, failures in outcomes)

        # Wait out the respawn (backoff + boot) before probing the slot.
        deadline = time.monotonic() + 120.0
        while timeline["readmitted"] is None and time.monotonic() < deadline:
            time.sleep(0.02)
        stop_watch.set()
        watcher.join(timeout=5)
        mid_stats = frontend.aggregate_stats()

        # Phase 3: recovered. Ring preference pins this back on the victim
        # slot — now a fresh process whose only cache state is the L2 dir.
        recovered_worker = frontend.worker_for_dataset(dataset).index
        recovered_started = time.perf_counter()
        recovered_latencies = sorted(
            _timed_drilldown(address, dataset, n_steps, k, seed=1)
        )
        recovered_wall = time.perf_counter() - recovered_started
        post_stats = frontend.aggregate_stats()
        process_samples = [s.as_dict() for s in monitor.sample()]

        victim_row = next(
            w for w in post_stats["workers"] if w["worker"] == victim
        )
        victim_tiers = victim_row.get("cache_tiers", {})
        death, readmitted = timeline["death"], timeline["readmitted"]
        window = [
            s
            for s in chaos_samples
            if death is not None and s[0] >= death
            and (readmitted is None or s[0] <= readmitted)
        ]

        for phase, latencies, wall, failures in (
            ("warm", warm_latencies, warm_wall, 0),
            ("chaos", sorted(s[1] for s in chaos_samples), chaos_wall,
             chaos_failures),
            ("recovered", recovered_latencies, recovered_wall, 0),
        ):
            table.add(
                phase=phase,
                requests=len(latencies),
                failures=failures,
                wall_s=wall,
                p50_ms=1e3 * _latency_percentile(latencies, 0.50),
                p99_ms=1e3 * _latency_percentile(latencies, 0.99),
            )

        if out_path:
            try:
                with open(out_path) as handle:
                    existing_rows = int(json.load(handle).get("n_rows", 0))
            except (OSError, ValueError):
                existing_rows = 0
            if existing_rows > n_rows:
                root, ext = os.path.splitext(out_path)
                out_path = f"{root}.{current_scale()}{ext}"
            try:
                with open(ledger_path) as handle:
                    ledger_lines = handle.read().splitlines()
            except OSError:
                ledger_lines = []
            payload = {
                "bench": "chaos",
                "generated_unix": time.time(),
                "scale": current_scale(),
                "dataset": dataset,
                "n_rows": n_rows,
                "n_steps": n_steps,
                "k": k,
                "n_workers": n_workers,
                "n_sessions": n_sessions,
                "load_threads": load_threads,
                "host_cores": os.cpu_count() or 1,
                "fault_spec": os.environ[faults.ENV_SPEC],
                "ledger_firings": len(ledger_lines),
                "kill": {
                    "victim": victim,
                    "doomed_pid": doomed_pid,
                    "respawned_pid": frontend.workers[victim].pid,
                    "generation": timeline["generation"],
                    "restart_backoff_s": restart_backoff,
                },
                "recovery": {
                    "detected_to_readmitted_s": (
                        readmitted - death
                        if death is not None and readmitted is not None
                        else None
                    ),
                    "recovered_slot_serves_dataset": recovered_worker
                    == victim,
                },
                "error_window": {
                    "requests_completed": len(window),
                    "worst_latency_ms": 1e3 * max(
                        (s[1] for s in window), default=0.0
                    ),
                    "client_failures": chaos_failures,
                    "frontend_5xx": int(mid_stats["errors"])
                    - int(pre_stats["errors"]),
                    "sessions_resurrected": int(
                        mid_stats["sessions_resurrected"]
                    ),
                },
                "warm_cache": {
                    "respawned_l2_hits": int(victim_tiers.get("l2_hits", 0)),
                    "respawned_l1_hits": int(victim_tiers.get("l1_hits", 0)),
                },
                "process_samples": process_samples,
                "rows": list(table.rows),
            }
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=2)
    finally:
        stop_watch.set()
        frontend.graceful_shutdown(timeout=30)
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        faults.uninstall()
    return table


def bench_backends_compare(
    n_rows: int | None = None, strategy: str = "sharing"
) -> ResultTable:
    """Measured latency of the same SeeDB workload on each execution backend.

    Runs one engine invocation per registered in-tree backend over an
    identical SYN table and reports setup time (the sqlite backend pays a
    one-off materialization), engine wall seconds, and speedup relative to
    sqlite.  The runs double as a bench-scale differential check: every
    backend must select the same top-k or this raises.
    """
    from repro.config import EngineConfig

    n_rows = n_rows or _backend_rows()
    table = ResultTable(
        f"Execution backends: native vs sqlite on SYN, {n_rows:,} rows "
        f"({strategy.upper()})",
        notes="speedup relative to the sqlite backend; identical top-k enforced",
    )
    syn = synthetic.make_syn(n_rows=n_rows, n_dimensions=5, n_measures=3)
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    baseline_selected = None
    wall_by_backend: dict[str, float] = {}
    rows: list[dict[str, object]] = []
    for backend in ("sqlite", "native"):
        config = EngineConfig(store="col", backend=backend, use_binpacking=False)
        setup_started = time.perf_counter()
        with SeeDB.over_table(syn, store="col", config=config) as seedb:
            setup_seconds = time.perf_counter() - setup_started
            run = seedb.run_engine(target, k=10, strategy=strategy, pruner="none")
        if baseline_selected is None:
            baseline_selected = run.selected
        elif run.selected != baseline_selected:
            raise AssertionError(
                f"backend {backend!r} disagreed with baseline top-k"
            )
        wall_by_backend[backend] = run.wall_seconds
        rows.append(
            dict(
                backend=backend,
                setup_s=setup_seconds,
                run_wall_s=run.wall_seconds,
                queries=run.stats.queries_issued,
            )
        )
    for row in rows:
        row["speedup_vs_sqlite"] = wall_by_backend["sqlite"] / max(
            float(row["run_wall_s"]), 1e-12  # type: ignore[arg-type]
        )
        table.add(**row)
    return table


# --------------------------------------------------------------------------- #
# workload-level adaptive optimizer (ablation matrix)
# --------------------------------------------------------------------------- #


def _optimizer_rows(scale: str | None = None) -> int:
    return {"smoke": 60_000, "small": 200_000, "full": 500_000}[
        scale or current_scale()
    ]


def bench_optimizer(
    n_rows: int | None = None, out_path: str | None = "BENCH_optimizer.json"
) -> ResultTable:
    """Ablation matrix for the workload-level adaptive optimizer.

    Runs an identical SHARING workload — a two-dimension synthetic table
    whose dimension-pair group-by product (250 x 250 x 2 flag slices)
    overflows the static dense-grouping limit — under four optimizer
    configurations: everything off, multi-aggregate fusion only, adaptive
    dense grouping only, and all decisions on.  Every variant must return
    the identical top-k and bitwise-equal utilities (the optimizer's
    contract: it changes *how* queries execute, never *what* they
    compute).  Fusion's win is discrete and timing-independent — strictly
    fewer queries issued — while adaptive grouping's wall-clock gain is
    recorded alongside the dense-limit decision the optimizer actually
    took.

    When ``out_path`` is set the matrix lands in the perf-trajectory JSON
    (CI uploads it); the scale-suffix sibling rule applies, so a smoke run
    never clobbers a bigger committed baseline.
    """
    import json

    from repro.config import OptimizerConfig

    n_rows = n_rows or _optimizer_rows()
    repeats = {"smoke": 2, "small": 3, "full": 3}[current_scale()]
    distinct = 250
    syn = synthetic.make_synthetic(
        synthetic.SyntheticConfig(
            name="opt",
            n_rows=n_rows,
            n_dimensions=2,
            n_measures=2,
            distinct_values=distinct,
            seed=0,
        )
    )
    target = eq(synthetic.SPLIT_COLUMN, synthetic.TARGET_VALUE)
    # A budget large enough that the dimension-pair product (not the
    # budget) is what forces the static path sparse; one aggregate per
    # query so fusion has distinct queries to merge.
    base = tuned_config("row").with_(
        row_group_budget=300_000,
        max_group_bys_per_query=2,
        max_aggregates_per_query=1,
    )
    variants: list[tuple[str, "OptimizerConfig"]] = [
        ("off", OptimizerConfig(enabled=False)),
        (
            "fusion",
            OptimizerConfig(
                enabled=True,
                adaptive_grouping=False,
                adaptive_chunking=False,
                prefetch=False,
            ),
        ),
        (
            "grouping",
            OptimizerConfig(
                enabled=True,
                fuse_aggregates=False,
                adaptive_chunking=False,
                prefetch=False,
            ),
        ),
        ("all_on", OptimizerConfig(enabled=True)),
    ]

    table = ResultTable(
        f"Adaptive optimizer ablations: {n_rows:,} rows, "
        f"{distinct}x{distinct} dimension pair (SHARING, ROW)",
        notes="identical top-k + bitwise utilities enforced across every "
        "variant; fusion win = fewer queries issued (timing-independent)",
    )
    results: list[dict[str, object]] = []
    baseline: dict[str, object] | None = None
    for name, opt in variants:
        config = base.with_(optimizer=opt)
        seedb = SeeDB.over_table(
            syn, store="row", config=config,
            buffer_pool=scaled_buffer_pool(syn),
        )
        best_wall = None
        for _ in range(repeats):
            seedb.store.buffer_pool.clear()
            run = seedb.run_engine(target, k=10, strategy="sharing", pruner="none")
            best_wall = (
                run.wall_seconds
                if best_wall is None
                else min(best_wall, run.wall_seconds)
            )
        decisions = run.optimizer_decisions
        row = dict(
            variant=name,
            wall_s=best_wall,
            queries=run.stats.queries_issued,
            fused_away=(
                decisions.get("fusion", {}).get("queries_fused_away", 0)
                if decisions
                else 0
            ),
            dense_limit=(
                decisions.get("grouping", {}).get("dense_limit")
                if decisions
                else None
            ),
        )
        if baseline is None:
            baseline = dict(
                selected=run.selected, utilities=run.utilities, wall=best_wall
            )
        else:
            if run.selected != baseline["selected"]:
                raise AssertionError(f"variant {name!r} changed the top-k")
            for key, value in baseline["utilities"].items():  # type: ignore[union-attr]
                if run.utilities[key] != value:
                    raise AssertionError(
                        f"variant {name!r} utility for {key} diverged"
                    )
            row["speedup_vs_off"] = float(baseline["wall"]) / max(best_wall, 1e-12)  # type: ignore[arg-type]
        results.append(row)
    by_variant = {str(r["variant"]): r for r in results}
    # Fusion's discrete, timing-independent win: strictly fewer queries.
    for fused in ("fusion", "all_on"):
        if int(by_variant[fused]["queries"]) >= int(by_variant["off"]["queries"]):  # type: ignore[arg-type]
            raise AssertionError(
                f"variant {fused!r} did not reduce queries issued "
                f"({by_variant[fused]['queries']} vs {by_variant['off']['queries']})"
            )
    for row in results:
        table.add(**row)

    if out_path:
        try:
            with open(out_path) as handle:
                existing_rows = int(json.load(handle).get("n_rows", 0))
        except (OSError, ValueError):
            existing_rows = 0
        if existing_rows > n_rows:
            root, ext = os.path.splitext(out_path)
            out_path = f"{root}.{current_scale()}{ext}"
        payload = {
            "bench": "optimizer",
            "generated_unix": time.time(),
            "scale": current_scale(),
            "n_rows": n_rows,
            "host_cores": os.cpu_count() or 1,
            "repeats_best_of": repeats,
            "strategy": "sharing",
            "store": "row",
            "distinct_per_dimension": distinct,
            "group_product_with_flag": distinct * distinct * 2,
            "queries_off": by_variant["off"]["queries"],
            "queries_all_on": by_variant["all_on"]["queries"],
            "speedup_all_on_vs_off": by_variant["all_on"].get("speedup_vs_off"),
            "rows": results,
        }
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
    return table
