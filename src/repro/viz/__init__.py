"""Visualization output: chart specs and terminal rendering.

SeeDB's front end renders recommended views as bar charts (paper §3,
Figure 2).  With no browser in this reproduction, each recommendation can be
exported as a JSON chart spec (vega-lite-flavoured, consumable by any
plotting stack) or rendered as a side-by-side target/reference ASCII bar
chart for terminals.
"""

from repro.viz.ascii import render_bar_chart, render_recommendation
from repro.viz.export import export_recommendations, recommendations_to_json
from repro.viz.spec import BarChartSpec, recommendation_spec

__all__ = [
    "BarChartSpec",
    "export_recommendations",
    "recommendation_spec",
    "recommendations_to_json",
    "render_bar_chart",
    "render_recommendation",
]
