"""Terminal bar-chart rendering.

Renders a view's target/reference distributions as paired horizontal bars —
enough to eyeball the deviation SeeDB is scoring, with no plotting
dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.result import Recommendation

_BAR_CHAR_TARGET = "█"
_BAR_CHAR_REFERENCE = "░"


def render_bar_chart(
    groups: Sequence[object],
    target: Sequence[float],
    reference: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """Paired horizontal bars, one target row and one reference row per group."""
    if not (len(groups) == len(target) == len(reference)):
        raise ValueError("groups/target/reference must be the same length")
    peak = max([*target, *reference, 1e-12])
    label_width = max((len(str(g)) for g in groups), default=1)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for group, p, q in zip(groups, target, reference):
        bar_t = _BAR_CHAR_TARGET * max(int(round(width * p / peak)), 1 if p > 0 else 0)
        bar_r = _BAR_CHAR_REFERENCE * max(int(round(width * q / peak)), 1 if q > 0 else 0)
        lines.append(f"{str(group):>{label_width}} | {bar_t:<{width}} {p:6.3f}  target")
        lines.append(f"{'':>{label_width}} | {bar_r:<{width}} {q:6.3f}  reference")
    return "\n".join(lines)


def render_recommendation(recommendation: "Recommendation", width: int = 40) -> str:
    """ASCII chart for one recommendation, titled with rank and utility."""
    dists = recommendation.distributions
    title = (
        f"#{recommendation.rank} {recommendation.view.describe()} "
        f"(utility={recommendation.utility:.4f})"
    )
    return render_bar_chart(
        dists.keys, dists.target.tolist(), dists.reference.tolist(), width, title
    )
