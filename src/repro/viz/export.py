"""Exporting recommendations as JSON."""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.result import RecommendationSet


def recommendations_to_json(result: "RecommendationSet", indent: int = 2) -> str:
    """Serialize a recommendation set (ranking + chart specs) to JSON text."""
    payload = {
        "k": result.k,
        "strategy": result.strategy,
        "pruner": result.pruner,
        "metric": result.metric,
        "modeled_latency_seconds": result.modeled_latency,
        "queries_issued": result.queries_issued,
        "recommendations": [
            {
                "rank": rec.rank,
                "view": rec.view.describe(),
                "dimension": rec.view.dimension,
                "measure": rec.view.measure,
                "func": rec.view.func.value,
                "utility": rec.utility,
                "chart": rec.chart_spec(),
            }
            for rec in result
        ],
    }
    return json.dumps(payload, indent=indent)


def export_recommendations(result: "RecommendationSet", path: str | Path) -> Path:
    """Write :func:`recommendations_to_json` output to ``path``."""
    out = Path(path)
    out.write_text(recommendations_to_json(result))
    return out
