"""Chart specifications (JSON-serializable, vega-lite-flavoured).

A :class:`BarChartSpec` describes a grouped bar chart comparing a view's
target and reference distributions — the visualization SeeDB's front end
shows for each recommendation (e.g. paper Figure 1a, average capital gain
by sex for unmarried vs. married adults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.result import Recommendation


@dataclass(frozen=True)
class BarChartSpec:
    """A grouped bar chart over categorical groups."""

    title: str
    x_field: str
    y_field: str
    series: tuple[str, ...]
    #: rows: {x_field: group, "series": name, y_field: value}
    data: tuple[dict, ...]
    mark: str = "bar"
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Vega-lite-flavoured dictionary (stable field order)."""
        return {
            "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
            "title": self.title,
            "mark": self.mark,
            "data": {"values": [dict(row) for row in self.data]},
            "encoding": {
                "x": {"field": self.x_field, "type": "nominal"},
                "y": {"field": self.y_field, "type": "quantitative"},
                "xOffset": {"field": "series"},
                "color": {"field": "series"},
            },
            "usermeta": dict(self.metadata),
        }


def recommendation_spec(recommendation: "Recommendation") -> dict:
    """Chart spec for one recommendation (target vs reference bars)."""
    view = recommendation.view
    dists = recommendation.distributions
    rows: list[dict] = []
    for key, p, q in zip(dists.keys, dists.target, dists.reference):
        rows.append({"group": str(key), "series": "target", "value": float(p)})
        rows.append({"group": str(key), "series": "reference", "value": float(q)})
    spec = BarChartSpec(
        title=view.describe(),
        x_field="group",
        y_field="value",
        series=("target", "reference"),
        data=tuple(rows),
        metadata={
            "dimension": view.dimension,
            "measure": view.measure,
            "func": view.func.value,
            "utility": recommendation.utility,
            "rank": recommendation.rank,
        },
    )
    return spec.to_dict()
