"""Engine-wide configuration objects.

Two dataclasses hold every tunable in the system:

* :class:`CostModelConfig` — parameters of the deterministic cost model used
  to report simulated latencies (the substitution for the paper's Postgres /
  column-store testbed, see DESIGN.md §2).
* :class:`EngineConfig` — SeeDB execution-engine knobs: phases, sharing
  limits, memory budgets, pruning parameters.

Defaults mirror the paper's experimental setup: 10 execution phases, 16-way
parallelism (their 16-core Xeon), row-store group-by memory budget of 10^4
distinct groups and column-store budget of 10^2 (Figure 8a), and delta = 0.05
for the Hoeffding–Serfling confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

StoreKind = Literal["row", "col"]

#: Number of rows per physical page in both storage engines.  Chosen so that
#: page counts are large enough for LRU behaviour to matter in tests while
#: keeping per-page bookkeeping cheap.
DEFAULT_PAGE_ROWS = 4096

#: Paper's machine: 16 core Intel Xeon E5530.
DEFAULT_N_CORES = 16


@dataclass(frozen=True)
class CostModelConfig:
    """Parameters of the deterministic latency model.

    The model charges time per byte scanned (misses only — buffer-pool hits
    are charged a much cheaper rate), per query issued, and per group
    maintained during aggregation, then divides parallelizable work by the
    effective parallelism (with contention beyond ``n_cores``).

    Units are seconds; absolute values are calibrated so that unoptimized
    runs on Table-1-sized datasets land in the paper's "100s of seconds"
    regime for ROW and ~5x faster for COL.
    """

    #: Seconds to read one byte from "disk" (a buffer-pool miss).
    #: 8 ns/B ~ 125 MB/s sequential reads, 2015-era spinning disk.
    seconds_per_byte_miss: float = 8.0e-9
    #: Seconds to process one byte already cached in the buffer pool.
    seconds_per_byte_hit: float = 8.0e-10
    #: Fixed overhead per SQL query issued (parse/plan/optimize/round-trip).
    seconds_per_query: float = 0.02
    #: Seconds per (row, aggregate) pair processed by the executor.  Row
    #: stores pay tuple-at-a-time iteration; column stores execute
    #: vectorized, ~5x cheaper — the engine-architecture half of the paper's
    #: ROW/COL latency gap (the other half is bytes touched).
    row_seconds_per_agg_row: float = 2.0e-7
    col_seconds_per_agg_row: float = 4.0e-8
    #: Seconds per distinct group maintained in the hash table.
    seconds_per_group: float = 2.0e-7
    #: Extra multiplier on scan cost for every additional pass caused by
    #: group-by hash-table spills (multi-pass partitioned aggregation).
    spill_pass_penalty: float = 1.0
    #: Number of physical cores available for parallel query execution.
    n_cores: int = DEFAULT_N_CORES
    #: Quadratic contention coefficient applied when the number of parallel
    #: queries exceeds ``n_cores`` (models lock/buffer/cache-line contention,
    #: paper §4.1 "Parallel Query Execution").
    contention_coefficient: float = 0.08

    def effective_parallelism(self, n_parallel: int) -> float:
        """Return the speedup divisor for ``n_parallel`` concurrent queries.

        Below ``n_cores`` the divisor is ``n_parallel`` (linear scaling, as
        queries share buffer-pool pages).  Beyond it, contention grows
        quadratically, reproducing the U-shaped latency of Figure 7b.
        """
        if n_parallel < 1:
            raise ValueError(f"n_parallel must be >= 1, got {n_parallel}")
        capped = min(n_parallel, self.n_cores)
        excess = max(0, n_parallel - self.n_cores)
        contention = 1.0 + self.contention_coefficient * excess * excess / self.n_cores
        return capped / contention


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the workload-level adaptive optimizer (:mod:`repro.core.optimizer`).

    The optimizer sits between the sharing planner and the dispatcher and
    picks per-phase execution choices from *observed* statistics instead of
    static guesses.  Each decision has its own ablation toggle so BENCH
    trajectories keep attributing wins; every decision taken is recorded on
    :attr:`repro.core.engine.EngineRun.optimizer_decisions`.

    All decisions are bitwise-safe by construction: dense vs sparse grouping
    and streaming granularity are value-identical execution plans (see
    :mod:`repro.db.groupby` / :mod:`repro.db.streaming`), aggregate fusion
    only merges queries whose per-aggregate computations are independent,
    and prefetch merely warms a cache keyed by exact fingerprints.

    Example::

        from repro import EngineConfig, OptimizerConfig

        config = EngineConfig(store="col", optimizer=OptimizerConfig(enabled=True))
        ablation = config.with_(
            optimizer=config.optimizer.with_(fuse_aggregates=False)
        )
    """

    #: Master switch.  Default **off** so benchmark ablations keep measuring
    #: the static plans; the serving layer and ``bench_optimizer`` turn it on.
    enabled: bool = False
    #: Pick dense (``np.bincount`` over the stride-encoded domain) vs sparse
    #: (``np.unique`` sort) grouping from the *measured* key cardinality of
    #: the first executed phase instead of the static ``_DENSE_GROUP_LIMIT``
    #: guess in :mod:`repro.db.groupby`.
    adaptive_grouping: bool = True
    #: Recompute ``stream_chunk_rows`` after the first phase from
    #: ``memory_budget_bytes`` minus the observed per-group aggregation-state
    #: footprint (the static formula ignores group state entirely).
    adaptive_chunking: bool = True
    #: Merge :class:`~repro.core.sharing.PlannedQuery`'s that share
    #: (table, group-by key, predicate) into single multi-aggregate passes —
    #: §4.1 COMB applied *across* the planner's aggregate chunks.
    fuse_aggregates: bool = True
    #: Pre-warm the result cache with the drill-down views a session is
    #: statistically likely to request next (§6.2 bookmark model via
    #: :func:`repro.study.sessions.bookmark_probability`).  Only effective
    #: where a cache is wired in (the serving layer).
    prefetch: bool = True
    #: Ceiling for the adaptively raised dense-grouping domain.  Dense
    #: aggregation allocates O(domain) slots per aggregate, so the optimizer
    #: never raises the dense cap beyond this many slots (8 MB of float64).
    dense_limit_max: int = 1 << 20
    #: Measured occupancy (distinct groups / stride domain) above which the
    #: dense path is worth its O(domain) allocation even past the static cap.
    dense_occupancy_threshold: float = 0.05
    #: Maximum drill-down views prefetched per recommendation.
    prefetch_limit: int = 4
    #: Minimum bookmark probability for a view to be prefetched.
    prefetch_min_probability: float = 0.5

    def with_(self, **changes: object) -> "OptimizerConfig":
        """Return a copy with ``changes`` applied (convenience for sweeps)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CoalesceConfig:
    """Knobs of the serving tier's cross-request batching gateway.

    The gateway (:mod:`repro.service.coalesce`) sits between the HTTP
    handler threads and the engine: handler threads submit their
    recommendation step and block on a future, a per-(dataset, store,
    metric) collector drains the queue under a bounded window and executes
    the union of all pending requests as ONE workload through the shared
    scan batch path — so one scan serves many users.  Results are
    bitwise-identical coalesced vs. not (the deterministic batch-barrier
    semantics are order-independent); only the accounting moves: shared
    pages are charged once per batch, to the first request that touches
    them, and deduplicated queries are marked ``coalesced_queries`` on the
    sharer's :class:`ExecutionStats`.

    Example::

        from repro import CoalesceConfig
        from repro.service import RecommendationService

        service = RecommendationService(
            datasets=("census",),
            coalesce=CoalesceConfig(enabled=True, max_wait_ms=10.0),
        )
    """

    #: Master switch.  Default **off**: a disabled gateway is never
    #: constructed and ``recommend()`` is byte-for-byte the direct path.
    enabled: bool = False
    #: Flush a window as soon as this many requests are pending (the
    #: collector never waits once the batch is full).
    max_batch_size: int = 16
    #: Longest time a request may sit in the window waiting for co-batchers,
    #: in milliseconds.  ``0`` degenerates to pass-through: the collector
    #: drains whatever is already queued and never waits.
    max_wait_ms: float = 5.0
    #: Attach concurrent *identical* in-flight requests (same result-cache
    #: fingerprint) to one execution: one compute, N responses — the
    #: thundering-herd case the result cache only fixes for sequential
    #: repeats.
    singleflight: bool = True

    def with_(self, **changes: object) -> "CoalesceConfig":
        """Return a copy with ``changes`` applied (convenience for sweeps)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class EngineConfig:
    """SeeDB execution-engine configuration.

    Attributes mirror the knobs evaluated in the paper's Section 5 — the
    number of execution phases, how many aggregates may be combined into a
    single query, the group-by memory budgets per store, the degree of
    parallelism, pruning parameters — plus this reproduction's own levers:
    ``backend`` (execution engine), ``shared_scan`` (batch physical
    sharing), and ``result_cache`` (cross-session memoization).

    The dataclass is frozen; derive variants with :meth:`with_`.

    Example::

        from repro import EngineConfig

        config = EngineConfig(store="col", backend="sqlite")
        ablation = config.with_(shared_scan=False, result_cache=False)
        assert ablation.group_budget() == config.col_group_budget

    Out-of-core streaming (chunked / memory-mapped tables, see
    :mod:`repro.db.chunks`) is controlled by three knobs::

        from repro import EngineConfig
        from repro.db.chunks import open_table

        table = open_table("datasets/air_chunks")       # memmap-backed
        # Cap chunk residency at 64 MB: the engine shrinks its streaming
        # granularity so one materialized chunk (all columns) fits.
        config = EngineConfig(store="col", memory_budget_bytes=64 << 20)
        # Or pin the granularity directly (rows per streamed chunk):
        config = config.with_(stream_chunk_rows=65_536)
        # Optionally snap phase boundaries to the chunk grid so no phase
        # ever splits a chunk (changes phase ranges, hence estimates):
        config = config.with_(chunk_aligned_phases=True)

    Results are *value-identical* across every streaming granularity —
    streaming changes peak memory and accounting, never answers.

    Every knob is documented inline below and in ``docs/api.md``.
    """

    #: Physical layout the underlying DBMS uses ("row" or "col").
    store: StoreKind = "row"
    #: Execution backend the engine ships queries to: "native" (the
    #: in-process numpy executor, with full cost accounting) or "sqlite"
    #: (an independent SQL engine executing the generated SQL text); see
    #: :mod:`repro.db.backends` for the registry.
    backend: str = "native"
    #: Number of equal partitions the phased framework splits the data into.
    n_phases: int = 10
    #: Maximum aggregate expressions merged into one SQL query (Fig. 7a
    #: sweeps this; None means "no limit", the paper's tuned ROW setting).
    max_aggregates_per_query: int | None = None
    #: Maximum number of group-by attributes merged into one query when the
    #: bin-packing optimizer is disabled (MAX_GB baseline of Fig. 8b).
    max_group_bys_per_query: int = 1
    #: Distinct-group memory budget for the row store (Fig. 8a cliff ~10^4).
    row_group_budget: int = 10_000
    #: Distinct-group memory budget for the column store (cliff ~10^2).
    col_group_budget: int = 100
    #: Use first-fit bin packing to combine group-bys under the budget.
    use_binpacking: bool = False
    #: Combine target and reference view into one grouped query.
    combine_target_reference: bool = True
    #: Number of view queries issued concurrently (paper finds ~n_cores best).
    n_parallel_queries: int = DEFAULT_N_CORES
    #: Serve each phase's whole query batch from one shared scan (§4.1 taken
    #: to the physical layer): distinct base columns scanned once, derived
    #: flag / predicate expressions evaluated once, buffer-pool pages charged
    #: once per batch.  Off = per-query dispatch (the ablation baseline).
    #: The NO_OPT strategy always runs per-query regardless — it *is* the
    #: no-sharing baseline.
    shared_scan: bool = True
    #: Memoize executed view-query results in a
    #: :class:`~repro.core.cache.ViewResultCache` keyed by (table
    #: identity+version, query plan, row range, backend semantics) and
    #: serve repeats from memory, skipping dispatch entirely.  Default
    #: **off** so benchmark ablations (Figures 5-9) keep measuring real
    #: execution; the serving layer (:mod:`repro.service`) turns it on and
    #: shares one cache across all sessions.
    result_cache: bool = False
    #: Keep per-query partial-aggregation state in a
    #: :class:`~repro.core.cache.DeltaStateCache` beside the result cache,
    #: so re-running a view after rows were *appended* restores the cached
    #: state and scans only the new chunks (bitwise-identical results to a
    #: full recompute — the streaming merge is exact by construction).
    #: Only effective together with ``result_cache``; default **off** for
    #: the same ablation-fidelity reason.  The serving layer turns it on.
    delta_cache: bool = False
    #: ``parallelism="process"`` only: when a worker process dies mid-phase
    #: and poisons the shared pool (``BrokenProcessPool``), rebuild the
    #: pool once and re-run the failed batch — bitwise identical, since
    #: whole queries fan out — then degrade to inline execution if the
    #: rebuilt pool breaks again.  Off = propagate the exception (the
    #: pre-recovery behavior, useful when a crash should be loud).
    pool_recovery: bool = True
    #: Rows per streamed chunk for out-of-core execution.  ``None`` (the
    #: default) defers to the table's own chunk layout: in-memory tables
    #: are single-chunk and keep the classic one-shot path; tables opened
    #: from an on-disk chunk store stream at their manifest's chunk size.
    #: Setting this forces chunk-at-a-time execution at the given
    #: granularity even on resident tables (exact same results — the
    #: streaming merge is value-identical by construction).
    stream_chunk_rows: int | None = None
    #: Soft cap, in bytes, on chunk data materialized in RAM at a time
    #: during streaming execution.  The engine divides it by the table's
    #: physical row width to derive (or shrink) the streaming chunk size;
    #: :attr:`repro.db.chunks.ResidencyTracker.peak_bytes` measures
    #: compliance.  ``None`` = no cap.
    memory_budget_bytes: int | None = None
    #: Snap phased-execution boundaries to the chunk grid
    #: (:func:`repro.core.phases.phase_ranges` ``align``), so no phase ever
    #: splits a chunk.  Default off: aligned boundaries differ from the
    #: paper's equal partitions, so runs would no longer be comparable
    #: against an unchunked table's.
    chunk_aligned_phases: bool = False
    #: Confidence parameter for Hoeffding–Serfling intervals (CI pruning).
    ci_delta: float = 0.05
    #: Return approximate results as soon as top-k is identified (COMB_EARLY).
    early_return: bool = False
    #: COMB_EARLY also returns once the top-k ranked by running estimates has
    #: been unchanged for this many consecutive phase boundaries (a practical
    #: stability check alongside the pruner's formal certification).
    early_stability_phases: int = 2
    #: Seed for any stochastic tie-breaking inside the engine.
    seed: int = 0
    #: Workload-level adaptive optimizer block (:class:`OptimizerConfig`):
    #: per-decision ablation toggles for measured dense/sparse grouping,
    #: adaptive streaming granularity, multi-aggregate fusion, and
    #: session-model cache prefetch.  Master switch defaults **off**.
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)

    def group_budget(self) -> int:
        """Distinct-group budget for the configured store."""
        return self.row_group_budget if self.store == "row" else self.col_group_budget

    def with_(self, **changes: object) -> "EngineConfig":
        """Return a copy with ``changes`` applied (convenience for sweeps)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass
class ExecutionStats:
    """Mutable accounting record filled in during query execution.

    One instance accumulates over a whole SeeDB invocation; the cost model
    converts it into a simulated latency.  ``wall_seconds`` additionally
    records real elapsed time of the in-memory engine for reference.
    """

    queries_issued: int = 0
    bytes_scanned_miss: int = 0
    bytes_scanned_hit: int = 0
    pages_hit: int = 0
    pages_missed: int = 0
    agg_rows_processed: int = 0
    groups_maintained: int = 0
    spill_passes: int = 0
    rows_scanned: int = 0
    wall_seconds: float = 0.0
    #: Queries served from the view-result cache instead of being executed
    #: (their scan/group counters above stay zero — hits are modeled free).
    cache_hits: int = 0
    #: Physical bytes the cache hits avoided re-scanning (the sum of the
    #: byte counters recorded when each hit entry was first executed).
    cache_bytes_saved: int = 0
    #: Queries whose execution was seeded from a cached partial-aggregation
    #: state (delta cache), so only rows past the cached prefix were scanned.
    delta_hits: int = 0
    #: Queries this run shared with another request coalesced into the same
    #: gateway batch: the owner request carries the execution counters, the
    #: sharer records only this marker — so summing per-request stats still
    #: charges each executed query (and each scanned page) exactly once.
    coalesced_queries: int = 0
    #: Filled in per batch: lists of per-query serial costs, used to model
    #: parallel execution (queries in one batch run concurrently).
    batch_costs: list[list[float]] = field(default_factory=list)

    def merge(self, other: "ExecutionStats") -> None:
        """Fold ``other``'s counters into this record."""
        self.queries_issued += other.queries_issued
        self.bytes_scanned_miss += other.bytes_scanned_miss
        self.bytes_scanned_hit += other.bytes_scanned_hit
        self.pages_hit += other.pages_hit
        self.pages_missed += other.pages_missed
        self.agg_rows_processed += other.agg_rows_processed
        self.groups_maintained += other.groups_maintained
        self.spill_passes += other.spill_passes
        self.rows_scanned += other.rows_scanned
        self.wall_seconds += other.wall_seconds
        self.cache_hits += other.cache_hits
        self.cache_bytes_saved += other.cache_bytes_saved
        self.delta_hits += other.delta_hits
        self.coalesced_queries += other.coalesced_queries
        self.batch_costs.extend(other.batch_costs)
